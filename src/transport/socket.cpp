#include "transport/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <spawn.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <mutex>
#include <utility>
#include <vector>

#include "transport/frame.hpp"
#include "transport/wire.hpp"

extern char** environ;

namespace asyncml::transport {

using support::Status;
using support::StatusCode;
using support::StatusOr;

namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point deadline_after(double ms) {
  return Clock::now() + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double, std::milli>(ms));
}

/// Remaining budget in whole milliseconds for poll(): 0 once expired,
/// rounded up so a sub-millisecond remainder still waits.
int remaining_poll_ms(Clock::time_point deadline) {
  const auto left = std::chrono::ceil<std::chrono::milliseconds>(deadline - Clock::now());
  if (left.count() <= 0) return 0;
  if (left.count() > std::numeric_limits<int>::max()) return std::numeric_limits<int>::max();
  return static_cast<int>(left.count());
}

Status errno_status(StatusCode code, const char* what) {
  return Status(code, std::string(what) + ": " + std::strerror(errno));
}

/// Polls `fd` for `events`; `deadline_ms < 0` blocks indefinitely.
/// Returns kUnavailable on deadline expiry.
Status poll_for(int fd, short events, Clock::time_point deadline, bool infinite) {
  for (;;) {
    pollfd pfd{fd, events, 0};
    const int timeout = infinite ? -1 : remaining_poll_ms(deadline);
    const int rc = ::poll(&pfd, 1, timeout);
    if (rc > 0) return Status::ok();
    if (rc == 0) return Status(StatusCode::kUnavailable, "socket i/o deadline expired");
    if (errno == EINTR) continue;
    return errno_status(StatusCode::kUnavailable, "poll");
  }
}

void set_nodelay(int fd) {
  int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

void ScopedFd::reset(int fd) noexcept {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

Status write_all(int fd, std::span<const std::uint8_t> data, double deadline_ms) {
  const auto deadline = deadline_after(deadline_ms);
  std::size_t off = 0;
  while (off < data.size()) {
    if (Status s = poll_for(fd, POLLOUT, deadline, /*infinite=*/false); !s.is_ok()) {
      return s;
    }
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) continue;
    return errno_status(StatusCode::kUnavailable, "send");
  }
  return Status::ok();
}

StatusOr<std::size_t> read_some(int fd, std::span<std::uint8_t> buf, double deadline_ms) {
  const bool infinite = deadline_ms < 0;
  const auto deadline = infinite ? Clock::time_point{} : deadline_after(deadline_ms);
  for (;;) {
    if (Status s = poll_for(fd, POLLIN, deadline, infinite); !s.is_ok()) return s;
    const ssize_t n = ::recv(fd, buf.data(), buf.size(), 0);
    if (n > 0) return static_cast<std::size_t>(n);
    if (n == 0) return Status(StatusCode::kUnavailable, "peer disconnected");
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    return errno_status(StatusCode::kUnavailable, "recv");
  }
}

StatusOr<ScopedFd> listen_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status(StatusCode::kInvalidArgument,
                  "unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  ScopedFd fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return errno_status(StatusCode::kUnavailable, "socket(AF_UNIX)");
  (void)::unlink(path.c_str());
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return errno_status(StatusCode::kUnavailable, "bind(AF_UNIX)");
  }
  if (::listen(fd.get(), 128) != 0) {
    return errno_status(StatusCode::kUnavailable, "listen(AF_UNIX)");
  }
  return fd;
}

StatusOr<ScopedFd> listen_tcp_ephemeral(std::uint16_t& port_out) {
  ScopedFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return errno_status(StatusCode::kUnavailable, "socket(AF_INET)");
  int one = 1;
  (void)::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // kernel picks an ephemeral port
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return errno_status(StatusCode::kUnavailable, "bind(127.0.0.1:0)");
  }
  if (::listen(fd.get(), 128) != 0) {
    return errno_status(StatusCode::kUnavailable, "listen(AF_INET)");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    return errno_status(StatusCode::kUnavailable, "getsockname");
  }
  port_out = ntohs(bound.sin_port);
  return fd;
}

StatusOr<ScopedFd> accept_deadline(int listen_fd, double deadline_ms) {
  const auto deadline = deadline_after(deadline_ms);
  for (;;) {
    if (Status s = poll_for(listen_fd, POLLIN, deadline, /*infinite=*/false);
        !s.is_ok()) {
      return s;
    }
    const int fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd >= 0) return ScopedFd(fd);
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    return errno_status(StatusCode::kUnavailable, "accept");
  }
}

namespace {

/// Bounded connect-retry loop shared by both address families: the listener
/// may not be up yet (or its backlog momentarily full), so refused attempts
/// retry on a 1 ms tick until the deadline.
template <typename MakeAttempt>
StatusOr<ScopedFd> connect_retry(MakeAttempt&& attempt, double deadline_ms) {
  const auto deadline = deadline_after(deadline_ms);
  for (;;) {
    StatusOr<ScopedFd> fd = attempt();
    if (fd.is_ok()) return fd;
    if (Clock::now() >= deadline) return fd.status();
    const timespec tick{0, 1'000'000};  // 1 ms between attempts
    (void)::nanosleep(&tick, nullptr);
  }
}

}  // namespace

StatusOr<ScopedFd> connect_unix(const std::string& path, double deadline_ms) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status(StatusCode::kInvalidArgument,
                  "unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return connect_retry(
      [&]() -> StatusOr<ScopedFd> {
        ScopedFd fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
        if (!fd.valid()) return errno_status(StatusCode::kUnavailable, "socket(AF_UNIX)");
        if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
          return errno_status(StatusCode::kUnavailable, "connect(AF_UNIX)");
        }
        return fd;
      },
      deadline_ms);
}

StatusOr<ScopedFd> connect_tcp(const std::string& host, std::uint16_t port,
                               double deadline_ms) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status(StatusCode::kInvalidArgument, "bad IPv4 address: " + host);
  }
  return connect_retry(
      [&]() -> StatusOr<ScopedFd> {
        ScopedFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
        if (!fd.valid()) return errno_status(StatusCode::kUnavailable, "socket(AF_INET)");
        if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
          return errno_status(StatusCode::kUnavailable, "connect(tcp)");
        }
        set_nodelay(fd.get());
        return fd;
      },
      deadline_ms);
}

// ---------------------------------------------------------------------------
// Socket channel: one connected worker process.

namespace {

class SocketChannel final : public Channel {
 public:
  SocketChannel(engine::WorkerId worker, ScopedFd fd, pid_t pid,
                const TransportConfig& config, engine::ClusterMetrics* metrics)
      : worker_(worker),
        fd_(std::move(fd)),
        pid_(pid),
        config_(config),
        metrics_(metrics),
        decoder_(config.max_frame_bytes) {}

  Status ship_task(engine::TaskSpec& spec) override {
    const TaskSpecMsg msg = to_wire(spec);
    const std::vector<std::uint8_t> frame =
        encode_frame(static_cast<std::uint8_t>(FrameKind::kTaskSpec),
                     encode_task_spec(msg));
    StatusOr<RoundTrip> rt = round_trip(frame, config_.io_deadline_ms);
    if (!rt.is_ok()) return rt.status();
    StatusOr<std::vector<std::uint8_t>> body = expect_ack(rt.value().ack, FrameKind::kTaskSpec);
    if (!body.is_ok()) return body.status();
    TaskSpecMsg echo;
    if (Status s = decode_task_spec(body.value(), echo); !s.is_ok()) {
      return mark_dead(std::move(s));
    }
    apply_wire(echo, spec);
    count(engine::WireChannel::kTask, rt.value());
    return Status::ok();
  }

  StatusOr<ShipReceipt> ship_result(engine::TaskResult result) override {
    const TaskResultMsg msg = to_wire(result);
    const std::vector<std::uint8_t> frame =
        encode_frame(static_cast<std::uint8_t>(FrameKind::kTaskResult),
                     encode_task_result(msg));
    StatusOr<RoundTrip> rt = round_trip(frame, config_.io_deadline_ms);
    if (!rt.is_ok()) return rt.status();
    StatusOr<std::vector<std::uint8_t>> body =
        expect_ack(rt.value().ack, FrameKind::kTaskResult);
    if (!body.is_ok()) return body.status();
    TaskResultMsg echo;
    if (Status s = decode_task_result(body.value(), echo); !s.is_ok()) {
      return mark_dead(std::move(s));
    }
    // The decoded echo is what the driver consumes; the local payload serves
    // only as the opaque-kind source object.
    StatusOr<engine::TaskResult> decoded = from_wire(echo, &result.payload);
    if (!decoded.is_ok()) return mark_dead(decoded.status());
    count(engine::WireChannel::kResult, rt.value());
    ShipReceipt receipt;
    receipt.result = std::move(decoded).value();
    receipt.wire_ns = rt.value().wire_ns;
    return receipt;
  }

  StatusOr<FetchReceipt> fetch_payload(const engine::Payload& payload,
                                       engine::BroadcastClass cls) override {
    (void)cls;
    const std::vector<std::uint8_t> body = encode_payload_envelope(payload);
    const FrameKind kind = envelope_frame_kind(payload);
    const std::uint8_t type = static_cast<std::uint8_t>(kind);
    const std::vector<std::uint8_t> frame =
        (config_.compress_deltas && kind == FrameKind::kModelDelta)
            ? encode_frame_lz4(type, body)
            : encode_frame(type, body);
    StatusOr<RoundTrip> rt = round_trip(frame, config_.io_deadline_ms);
    if (!rt.is_ok()) return rt.status();
    StatusOr<std::vector<std::uint8_t>> ack_body = expect_ack(rt.value().ack, kind);
    if (!ack_body.is_ok()) return ack_body.status();
    StatusOr<engine::Payload> decoded =
        decode_payload_envelope(ack_body.value(), &payload);
    if (!decoded.is_ok()) return mark_dead(decoded.status());
    count(engine::WireChannel::kModel, rt.value());
    FetchReceipt receipt;
    receipt.payload = std::move(decoded).value();
    return receipt;
  }

  [[nodiscard]] bool alive() const override {
    return !dead_.load(std::memory_order_acquire);
  }
  [[nodiscard]] bool is_wire() const override { return true; }
  [[nodiscard]] engine::WorkerId worker() const override { return worker_; }

  [[nodiscard]] pid_t pid() const { return pid_; }

  /// Chaos hook: SIGKILL the peer; the wire notices on the next I/O.
  void kill_peer() {
    if (pid_ > 0) (void)::kill(pid_, SIGKILL);
  }

  /// Best-effort shutdown round trip (short deadline so a hung peer cannot
  /// stall driver teardown), then closes the wire.
  void shutdown() {
    if (alive()) {
      const std::vector<std::uint8_t> frame =
          encode_frame(static_cast<std::uint8_t>(FrameKind::kShutdown), {});
      const double deadline = std::min(config_.io_deadline_ms, 2000.0);
      if (StatusOr<RoundTrip> rt = round_trip(frame, deadline); rt.is_ok()) {
        count(engine::WireChannel::kControl, rt.value());
      }
    }
    std::lock_guard lock(io_mu_);
    dead_.store(true, std::memory_order_release);
    fd_.reset();
  }

 private:
  struct RoundTrip {
    Frame ack;
    std::size_t sent = 0;
    std::size_t received = 0;
    std::uint64_t wire_ns = 0;
  };

  template <typename T>
  T mark_dead(T status) {
    dead_.store(true, std::memory_order_release);
    return status;
  }

  void count(engine::WireChannel ch, const RoundTrip& rt) {
    if (metrics_ != nullptr) metrics_->count_wire(ch, rt.sent, rt.received);
  }

  /// One request/ack exchange. Serialized per channel; any wire-level
  /// failure (deadline, disconnect, framing poison, stray frame) is
  /// fail-stop: the channel goes dead and stays dead.
  StatusOr<RoundTrip> round_trip(std::span<const std::uint8_t> frame_bytes,
                                 double deadline_ms) {
    std::lock_guard lock(io_mu_);
    if (dead_.load(std::memory_order_acquire)) {
      return Status(StatusCode::kUnavailable, "transport channel is dead");
    }
    const auto start = Clock::now();
    if (Status s = write_all(fd_.get(), frame_bytes, deadline_ms); !s.is_ok()) {
      return mark_dead(std::move(s));
    }
    std::vector<Frame> frames;
    std::array<std::uint8_t, 65536> buf;
    while (frames.empty()) {
      StatusOr<std::size_t> n = read_some(fd_.get(), buf, deadline_ms);
      if (!n.is_ok()) return mark_dead(n.status());
      if (Status s = decoder_.feed({buf.data(), n.value()}, frames); !s.is_ok()) {
        return mark_dead(std::move(s));
      }
    }
    if (frames.size() != 1) {
      // One request in flight per channel — a second frame is a protocol
      // violation.
      return mark_dead(
          Status(StatusCode::kUnavailable, "unexpected extra frame on channel"));
    }
    RoundTrip rt;
    rt.ack = std::move(frames.front());
    rt.sent = frame_bytes.size();
    rt.received = kFrameHeaderBytes + rt.ack.body.size();
    rt.wire_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start)
            .count());
    return rt;
  }

  /// Validates the ack frame and yields its (decompressed) message bytes.
  /// A kError ack reports the peer's decode verdict without killing the
  /// channel (framing stayed aligned); anything else unexpected is fatal.
  StatusOr<std::vector<std::uint8_t>> expect_ack(const Frame& ack, FrameKind want) {
    if (!ack.is_ack()) {
      return mark_dead(
          Status(StatusCode::kUnavailable, "peer sent a non-ack frame"));
    }
    if (ack.kind() == FrameKind::kError) {
      StatusOr<std::vector<std::uint8_t>> bytes = ack.message_bytes();
      if (!bytes.is_ok()) return mark_dead(bytes.status());
      ErrorMsg err;
      if (Status s = decode_error(bytes.value(), err); !s.is_ok()) {
        return mark_dead(std::move(s));
      }
      return error_to_status(err);
    }
    if (ack.kind() != want) {
      return mark_dead(
          Status(StatusCode::kUnavailable, "ack kind mismatch on channel"));
    }
    StatusOr<std::vector<std::uint8_t>> bytes = ack.message_bytes();
    if (!bytes.is_ok()) return mark_dead(bytes.status());
    return bytes;
  }

  engine::WorkerId worker_;
  ScopedFd fd_;
  pid_t pid_;
  TransportConfig config_;
  engine::ClusterMetrics* metrics_;
  std::mutex io_mu_;
  FrameDecoder decoder_;
  std::atomic<bool> dead_{false};
};

// ---------------------------------------------------------------------------
// Socket transport: listener + spawned worker endpoints.

std::string resolve_worker_binary(const TransportConfig& config) {
  if (!config.worker_binary.empty()) return config.worker_binary;
  if (const char* env = std::getenv("ASYNCML_WORKER_BIN"); env != nullptr && *env != 0) {
    return env;
  }
  // Next to the running binary (CMake drops every runtime target in the
  // build root).
  std::array<char, 4096> self{};
  const ssize_t n = ::readlink("/proc/self/exe", self.data(), self.size() - 1);
  if (n > 0) {
    std::string dir(self.data(), static_cast<std::size_t>(n));
    const std::size_t slash = dir.rfind('/');
    if (slash != std::string::npos) dir.resize(slash);
    return dir + "/asyncml_worker";
  }
  return "asyncml_worker";
}

class SocketTransport final : public Transport {
 public:
  SocketTransport(const TransportConfig& config, int num_workers,
                  engine::ClusterMetrics* metrics)
      : config_(config), num_workers_(num_workers), metrics_(metrics) {}

  ~SocketTransport() override { stop(); }

  Status start() override {
    const std::string binary = resolve_worker_binary(config_);
    if (::access(binary.c_str(), X_OK) != 0) {
      return Status(StatusCode::kFailedPrecondition,
                    "worker binary not executable: " + binary +
                        " (build the asyncml_worker target or set "
                        "ASYNCML_WORKER_BIN)");
    }

    ScopedFd listener;
    std::uint16_t port = 0;
    if (config_.backend == Backend::kUnixSocket) {
      StatusOr<std::string> dir = make_socket_dir();
      if (!dir.is_ok()) return dir.status();
      socket_dir_ = dir.value();
      socket_path_ = socket_dir_ + "/wire.sock";
      StatusOr<ScopedFd> fd = listen_unix(socket_path_);
      if (!fd.is_ok()) return fd.status();
      listener = std::move(fd).value();
    } else {
      // Ephemeral-port flake guard: port 0 binds essentially never collide,
      // but retry a few times anyway so one transient failure cannot fail a
      // whole run.
      Status last = Status::ok();
      for (int attempt = 0; attempt < 5 && !listener.valid(); ++attempt) {
        StatusOr<ScopedFd> fd = listen_tcp_ephemeral(port);
        if (fd.is_ok()) {
          listener = std::move(fd).value();
        } else {
          last = fd.status();
        }
      }
      if (!listener.valid()) return last;
    }

    for (int w = 0; w < num_workers_; ++w) {
      if (Status s = spawn_worker(binary, w, port); !s.is_ok()) {
        cleanup_failed_start();
        return s;
      }
    }

    // Children connect concurrently and in any order; the kHello frame each
    // sends first names its worker id, so accept order never matters.
    std::vector<std::unique_ptr<SocketChannel>> channels(
        static_cast<std::size_t>(num_workers_));
    for (int i = 0; i < num_workers_; ++i) {
      Status s = accept_one(listener.get(), channels);
      if (!s.is_ok()) {
        cleanup_failed_start();
        return s;
      }
    }
    channels_ = std::move(channels);
    return Status::ok();
  }

  void stop() override {
    if (stopped_.exchange(true)) return;
    for (auto& ch : channels_) {
      if (ch != nullptr) ch->shutdown();
    }
    reap_children();
    remove_socket_dir();
  }

  Channel& channel(engine::WorkerId worker) override {
    return *channels_[static_cast<std::size_t>(worker)];
  }

  [[nodiscard]] Backend backend() const override { return config_.backend; }

  void kill_worker(engine::WorkerId worker) override {
    if (worker >= 0 && static_cast<std::size_t>(worker) < channels_.size() &&
        channels_[static_cast<std::size_t>(worker)] != nullptr) {
      channels_[static_cast<std::size_t>(worker)]->kill_peer();
    }
  }

 private:
  StatusOr<std::string> make_socket_dir() {
    const char* tmp = std::getenv("TMPDIR");
    std::string tmpl = (tmp != nullptr && *tmp != 0 ? std::string(tmp) : "/tmp");
    if (!tmpl.empty() && tmpl.back() == '/') tmpl.pop_back();
    tmpl += "/asyncml.XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    if (::mkdtemp(buf.data()) == nullptr) {
      return errno_status(StatusCode::kUnavailable, "mkdtemp");
    }
    return std::string(buf.data());
  }

  void remove_socket_dir() {
    if (!socket_path_.empty()) (void)::unlink(socket_path_.c_str());
    if (!socket_dir_.empty()) (void)::rmdir(socket_dir_.c_str());
    socket_path_.clear();
    socket_dir_.clear();
  }

  Status spawn_worker(const std::string& binary, int worker, std::uint16_t port) {
    std::vector<std::string> args = {binary};
    if (config_.backend == Backend::kUnixSocket) {
      args.insert(args.end(), {"--uds", socket_path_});
    } else {
      args.insert(args.end(), {"--tcp", "127.0.0.1", std::to_string(port)});
    }
    args.insert(args.end(), {"--worker", std::to_string(worker), "--max-frame",
                             std::to_string(config_.max_frame_bytes)});

    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);

    // posix_spawn, not fork: the driver is heavily multi-threaded and a
    // fork()ed child could inherit a held malloc lock.
    pid_t pid = -1;
    const int rc =
        ::posix_spawn(&pid, binary.c_str(), nullptr, nullptr, argv.data(), environ);
    if (rc != 0) {
      errno = rc;
      return errno_status(StatusCode::kUnavailable, "posix_spawn(asyncml_worker)");
    }
    pids_.push_back(pid);
    return Status::ok();
  }

  /// Accepts one connection and completes the hello exchange: the child
  /// speaks first (kHello naming its worker id), the driver acks.
  Status accept_one(int listener, std::vector<std::unique_ptr<SocketChannel>>& channels) {
    StatusOr<ScopedFd> accepted = accept_deadline(listener, config_.io_deadline_ms);
    if (!accepted.is_ok()) return accepted.status();
    ScopedFd fd = std::move(accepted).value();
    if (config_.backend == Backend::kTcp) set_nodelay(fd.get());

    FrameDecoder decoder(config_.max_frame_bytes);
    std::vector<Frame> frames;
    std::array<std::uint8_t, 4096> buf;
    const auto deadline = deadline_after(config_.io_deadline_ms);
    std::size_t hello_bytes = 0;
    while (frames.empty()) {
      StatusOr<std::size_t> n =
          read_some(fd.get(), buf, std::max(0.0, static_cast<double>(remaining_poll_ms(deadline))));
      if (!n.is_ok()) return n.status();
      hello_bytes += n.value();
      if (Status s = decoder.feed({buf.data(), n.value()}, frames); !s.is_ok()) {
        return s;
      }
    }
    const Frame& hello = frames.front();
    if (frames.size() != 1 || hello.is_ack() || hello.kind() != FrameKind::kHello) {
      return Status(StatusCode::kUnavailable, "handshake: expected a kHello frame");
    }
    StatusOr<std::vector<std::uint8_t>> body = hello.message_bytes();
    if (!body.is_ok()) return body.status();
    HelloMsg msg;
    if (Status s = decode_hello(body.value(), msg); !s.is_ok()) return s;
    if (msg.protocol != kProtocolVersion) {
      return Status(StatusCode::kFailedPrecondition,
                    "handshake: protocol version mismatch");
    }
    if (msg.worker < 0 || msg.worker >= num_workers_ ||
        channels[static_cast<std::size_t>(msg.worker)] != nullptr) {
      return Status(StatusCode::kUnavailable, "handshake: bad or duplicate worker id");
    }

    HelloMsg ack_msg;
    ack_msg.worker = msg.worker;
    const std::vector<std::uint8_t> ack =
        encode_frame(ack_type(FrameKind::kHello), encode_hello(ack_msg));
    if (Status s = write_all(fd.get(), ack, config_.io_deadline_ms); !s.is_ok()) {
      return s;
    }
    if (metrics_ != nullptr) {
      metrics_->count_wire(engine::WireChannel::kControl, ack.size(), hello_bytes);
    }

    const pid_t pid = static_cast<std::size_t>(msg.worker) < pids_.size()
                          ? pids_[static_cast<std::size_t>(msg.worker)]
                          : -1;
    channels[static_cast<std::size_t>(msg.worker)] = std::make_unique<SocketChannel>(
        msg.worker, std::move(fd), pid, config_, metrics_);
    return Status::ok();
  }

  /// Waits briefly for children to exit on their own (they saw kShutdown or
  /// EOF), then SIGKILLs stragglers. Every child is reaped.
  void reap_children() {
    const auto deadline = deadline_after(2000.0);
    std::vector<pid_t> pending(pids_.begin(), pids_.end());
    while (!pending.empty() && Clock::now() < deadline) {
      for (std::size_t i = 0; i < pending.size();) {
        int status = 0;
        const pid_t rc = ::waitpid(pending[i], &status, WNOHANG);
        if (rc == pending[i] || (rc < 0 && errno == ECHILD)) {
          pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(i));
        } else {
          ++i;
        }
      }
      if (pending.empty()) break;
      const timespec tick{0, 1'000'000};
      (void)::nanosleep(&tick, nullptr);
    }
    for (const pid_t pid : pending) {
      (void)::kill(pid, SIGKILL);
      int status = 0;
      (void)::waitpid(pid, &status, 0);
    }
    pids_.clear();
  }

  void cleanup_failed_start() {
    for (const pid_t pid : pids_) (void)::kill(pid, SIGKILL);
    reap_children();
    remove_socket_dir();
  }

  TransportConfig config_;
  int num_workers_;
  engine::ClusterMetrics* metrics_;
  std::vector<std::unique_ptr<SocketChannel>> channels_;
  std::vector<pid_t> pids_;
  std::string socket_dir_;
  std::string socket_path_;
  std::atomic<bool> stopped_{false};
};

}  // namespace

std::unique_ptr<Transport> make_socket_transport(const TransportConfig& config,
                                                 int num_workers,
                                                 engine::ClusterMetrics* metrics) {
  return std::make_unique<SocketTransport>(config, num_workers, metrics);
}

}  // namespace asyncml::transport
