#include "transport/frame.hpp"

#include <array>
#include <cstring>

#include "support/crc32.hpp"
#include "transport/lz4.hpp"

namespace asyncml::transport {

using support::Status;
using support::StatusCode;
using support::StatusOr;

namespace {

constexpr std::array<std::uint8_t, 4> kMagic = {'A', 'M', 'F', '1'};

void put_u32le(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

std::uint32_t get_u32le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 | static_cast<std::uint32_t>(p[3]) << 24;
}

bool valid_kind(std::uint8_t type) {
  const std::uint8_t kind = type & ~kAckBit;
  return kind >= static_cast<std::uint8_t>(FrameKind::kHello) &&
         kind <= static_cast<std::uint8_t>(FrameKind::kError);
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  // One CRC-32 for the whole tree; the table lives in support/crc32.cpp so
  // the disk tier shares it without depending on the transport layer.
  return support::crc32(data);
}

StatusOr<std::vector<std::uint8_t>> Frame::message_bytes() const {
  if (!compressed()) {
    if (raw_len != body.size()) {
      return Status(StatusCode::kInvalidArgument,
                    "frame raw_len disagrees with uncompressed body length");
    }
    return body;
  }
  std::vector<std::uint8_t> raw(raw_len);
  if (Status s = lz4_decompress(body, raw); !s.is_ok()) return s;
  return raw;
}

std::vector<std::uint8_t> encode_frame(std::uint8_t type, std::uint8_t flags,
                                       std::span<const std::uint8_t> body,
                                       std::uint32_t raw_len) {
  std::vector<std::uint8_t> out(kFrameHeaderBytes + body.size());
  std::uint8_t* h = out.data();
  std::memcpy(h, kMagic.data(), kMagic.size());
  h[4] = type;
  h[5] = flags;
  h[6] = 0;
  h[7] = 0;
  put_u32le(h + 8, static_cast<std::uint32_t>(body.size()));
  put_u32le(h + 12, raw_len);
  put_u32le(h + 16, crc32(body));
  if (!body.empty()) {
    std::memcpy(h + kFrameHeaderBytes, body.data(), body.size());
  }
  return out;
}

std::vector<std::uint8_t> encode_frame(std::uint8_t type,
                                       std::span<const std::uint8_t> body) {
  return encode_frame(type, 0, body, static_cast<std::uint32_t>(body.size()));
}

std::vector<std::uint8_t> encode_frame_lz4(std::uint8_t type,
                                           std::span<const std::uint8_t> body) {
  std::vector<std::uint8_t> packed = lz4_compress(body);
  if (packed.size() >= body.size()) {
    return encode_frame(type, body);
  }
  return encode_frame(type, kFlagLz4, packed,
                      static_cast<std::uint32_t>(body.size()));
}

Status FrameDecoder::poison(std::string message) {
  poisoned_ = true;
  buf_.clear();
  return Status(StatusCode::kInvalidArgument, std::move(message));
}

Status FrameDecoder::feed(std::span<const std::uint8_t> data, std::vector<Frame>& out) {
  if (poisoned_) {
    return Status(StatusCode::kFailedPrecondition,
                  "frame decoder poisoned by earlier malformed input");
  }
  buf_.insert(buf_.end(), data.begin(), data.end());

  std::size_t consumed = 0;
  while (buf_.size() - consumed >= kFrameHeaderBytes) {
    const std::uint8_t* h = buf_.data() + consumed;
    if (std::memcmp(h, kMagic.data(), kMagic.size()) != 0) {
      return poison("bad frame magic");
    }
    const std::uint8_t type = h[4];
    const std::uint8_t flags = h[5];
    if (!valid_kind(type)) {
      return poison("unknown frame type " + std::to_string(type));
    }
    if ((flags & ~kFlagLz4) != 0) {
      return poison("unknown frame flags " + std::to_string(flags));
    }
    if (h[6] != 0 || h[7] != 0) {
      return poison("nonzero reserved frame bytes");
    }
    const std::uint32_t body_len = get_u32le(h + 8);
    const std::uint32_t raw_len = get_u32le(h + 12);
    const std::uint32_t crc = get_u32le(h + 16);
    // Allocation guard: both lengths are validated against the cap before any
    // body storage is reserved — a lying length field cannot drive memory use.
    if (body_len > max_frame_ || raw_len > max_frame_) {
      return poison("oversized frame: body_len=" + std::to_string(body_len) +
                    " raw_len=" + std::to_string(raw_len) + " exceeds cap " +
                    std::to_string(max_frame_));
    }
    if ((flags & kFlagLz4) == 0 && raw_len != body_len) {
      return poison("uncompressed frame with raw_len != body_len");
    }
    if (buf_.size() - consumed < kFrameHeaderBytes + body_len) break;

    Frame frame;
    frame.type = type;
    frame.flags = flags;
    frame.raw_len = raw_len;
    const std::uint8_t* body = h + kFrameHeaderBytes;
    frame.body.assign(body, body + body_len);
    if (crc32(frame.body) != crc) {
      return poison("frame crc mismatch");
    }
    out.push_back(std::move(frame));
    consumed += kFrameHeaderBytes + body_len;
  }
  if (consumed > 0) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(consumed));
  }
  return Status::ok();
}

}  // namespace asyncml::transport
