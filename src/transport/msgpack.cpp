#include "transport/msgpack.hpp"

#include <cstring>

namespace asyncml::transport {

using support::Status;
using support::StatusCode;

namespace {

Status type_error(const char* expected, std::uint8_t got) {
  return Status(StatusCode::kInvalidArgument,
                std::string("msgpack: expected ") + expected + ", got tag 0x" +
                    [](std::uint8_t b) {
                      constexpr char kHex[] = "0123456789abcdef";
                      return std::string{kHex[b >> 4], kHex[b & 0xF]};
                    }(got));
}

}  // namespace

void MsgWriter::write_uint(std::uint64_t v) {
  if (v < 0x80) {
    out_.push_back(static_cast<std::uint8_t>(v));
  } else if (v <= 0xFF) {
    out_.push_back(0xCC);
    out_.push_back(static_cast<std::uint8_t>(v));
  } else if (v <= 0xFFFF) {
    out_.push_back(0xCD);
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
    out_.push_back(static_cast<std::uint8_t>(v));
  } else if (v <= 0xFFFFFFFFull) {
    out_.push_back(0xCE);
    for (int s = 24; s >= 0; s -= 8) out_.push_back(static_cast<std::uint8_t>(v >> s));
  } else {
    out_.push_back(0xCF);
    for (int s = 56; s >= 0; s -= 8) out_.push_back(static_cast<std::uint8_t>(v >> s));
  }
}

void MsgWriter::write_int(std::int64_t v) {
  if (v >= 0) {
    write_uint(static_cast<std::uint64_t>(v));
    return;
  }
  if (v >= -32) {
    out_.push_back(static_cast<std::uint8_t>(v));  // negative fixint
  } else if (v >= -128) {
    out_.push_back(0xD0);
    out_.push_back(static_cast<std::uint8_t>(v));
  } else if (v >= -32768) {
    out_.push_back(0xD1);
    const auto u = static_cast<std::uint16_t>(v);
    out_.push_back(static_cast<std::uint8_t>(u >> 8));
    out_.push_back(static_cast<std::uint8_t>(u));
  } else if (v >= -2147483648ll) {
    out_.push_back(0xD2);
    const auto u = static_cast<std::uint32_t>(v);
    for (int s = 24; s >= 0; s -= 8) out_.push_back(static_cast<std::uint8_t>(u >> s));
  } else {
    out_.push_back(0xD3);
    const auto u = static_cast<std::uint64_t>(v);
    for (int s = 56; s >= 0; s -= 8) out_.push_back(static_cast<std::uint8_t>(u >> s));
  }
}

void MsgWriter::write_double(double v) {
  out_.push_back(0xCB);
  const auto bits = std::bit_cast<std::uint64_t>(v);
  for (int s = 56; s >= 0; s -= 8) out_.push_back(static_cast<std::uint8_t>(bits >> s));
}

void MsgWriter::write_str(std::string_view s) {
  const std::size_t n = s.size();
  if (n < 32) {
    out_.push_back(static_cast<std::uint8_t>(0xA0 | n));
  } else if (n <= 0xFF) {
    out_.push_back(0xD9);
    out_.push_back(static_cast<std::uint8_t>(n));
  } else if (n <= 0xFFFF) {
    out_.push_back(0xDA);
    out_.push_back(static_cast<std::uint8_t>(n >> 8));
    out_.push_back(static_cast<std::uint8_t>(n));
  } else {
    out_.push_back(0xDB);
    for (int s2 = 24; s2 >= 0; s2 -= 8) {
      out_.push_back(static_cast<std::uint8_t>(n >> s2));
    }
  }
  out_.insert(out_.end(), s.begin(), s.end());
}

void MsgWriter::write_bin(std::span<const std::uint8_t> data) {
  const std::size_t n = data.size();
  if (n <= 0xFF) {
    out_.push_back(0xC4);
    out_.push_back(static_cast<std::uint8_t>(n));
  } else if (n <= 0xFFFF) {
    out_.push_back(0xC5);
    out_.push_back(static_cast<std::uint8_t>(n >> 8));
    out_.push_back(static_cast<std::uint8_t>(n));
  } else {
    out_.push_back(0xC6);
    for (int s = 24; s >= 0; s -= 8) out_.push_back(static_cast<std::uint8_t>(n >> s));
  }
  out_.insert(out_.end(), data.begin(), data.end());
}

void MsgWriter::begin_array(std::size_t n) {
  if (n < 16) {
    out_.push_back(static_cast<std::uint8_t>(0x90 | n));
  } else if (n <= 0xFFFF) {
    out_.push_back(0xDC);
    out_.push_back(static_cast<std::uint8_t>(n >> 8));
    out_.push_back(static_cast<std::uint8_t>(n));
  } else {
    out_.push_back(0xDD);
    for (int s = 24; s >= 0; s -= 8) out_.push_back(static_cast<std::uint8_t>(n >> s));
  }
}

Status MsgReader::need(std::size_t n) const {
  if (static_cast<std::size_t>(end_ - p_) < n) {
    return Status(StatusCode::kInvalidArgument, "msgpack: truncated input");
  }
  return Status::ok();
}

std::uint64_t MsgReader::take_be(std::size_t n) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < n; ++i) v = v << 8 | *p_++;
  return v;
}

Status MsgReader::read_nil() {
  if (Status s = need(1); !s.is_ok()) return s;
  if (*p_ != 0xC0) return type_error("nil", *p_);
  ++p_;
  return Status::ok();
}

Status MsgReader::read_bool(bool& out) {
  if (Status s = need(1); !s.is_ok()) return s;
  const std::uint8_t tag = *p_;
  if (tag != 0xC2 && tag != 0xC3) return type_error("bool", tag);
  ++p_;
  out = tag == 0xC3;
  return Status::ok();
}

Status MsgReader::read_uint(std::uint64_t& out) {
  if (Status s = need(1); !s.is_ok()) return s;
  const std::uint8_t tag = *p_;
  if (tag < 0x80) {
    ++p_;
    out = tag;
    return Status::ok();
  }
  std::size_t width;
  switch (tag) {
    case 0xCC: width = 1; break;
    case 0xCD: width = 2; break;
    case 0xCE: width = 4; break;
    case 0xCF: width = 8; break;
    default: return type_error("uint", tag);
  }
  if (Status s = need(1 + width); !s.is_ok()) return s;
  ++p_;
  out = take_be(width);
  return Status::ok();
}

Status MsgReader::read_int(std::int64_t& out) {
  if (Status s = need(1); !s.is_ok()) return s;
  const std::uint8_t tag = *p_;
  if (tag >= 0xE0) {  // negative fixint
    ++p_;
    out = static_cast<std::int8_t>(tag);
    return Status::ok();
  }
  std::size_t width;
  switch (tag) {
    case 0xD0: width = 1; break;
    case 0xD1: width = 2; break;
    case 0xD2: width = 4; break;
    case 0xD3: width = 8; break;
    default: {
      // Any unsigned encoding that fits is accepted (writers use the
      // shortest form, so a small signed field may arrive as a fixint).
      std::uint64_t u = 0;
      if (Status s = read_uint(u); !s.is_ok()) return s;
      if (u > 0x7FFFFFFFFFFFFFFFull) {
        return Status(StatusCode::kInvalidArgument, "msgpack: uint overflows int64");
      }
      out = static_cast<std::int64_t>(u);
      return Status::ok();
    }
  }
  if (Status s = need(1 + width); !s.is_ok()) return s;
  ++p_;
  const std::uint64_t raw = take_be(width);
  switch (width) {
    case 1: out = static_cast<std::int8_t>(raw); break;
    case 2: out = static_cast<std::int16_t>(raw); break;
    case 4: out = static_cast<std::int32_t>(raw); break;
    default: out = static_cast<std::int64_t>(raw); break;
  }
  return Status::ok();
}

Status MsgReader::read_double(double& out) {
  if (Status s = need(1); !s.is_ok()) return s;
  if (*p_ != 0xCB) return type_error("float64", *p_);
  if (Status s = need(9); !s.is_ok()) return s;
  ++p_;
  out = std::bit_cast<double>(take_be(8));
  return Status::ok();
}

Status MsgReader::read_str(std::string& out) {
  if (Status s = need(1); !s.is_ok()) return s;
  const std::uint8_t tag = *p_;
  std::size_t len;
  std::size_t header;
  if ((tag & 0xE0) == 0xA0) {
    len = tag & 0x1F;
    header = 1;
  } else if (tag == 0xD9) {
    if (Status s = need(2); !s.is_ok()) return s;
    len = p_[1];
    header = 2;
  } else if (tag == 0xDA) {
    if (Status s = need(3); !s.is_ok()) return s;
    len = static_cast<std::size_t>(p_[1]) << 8 | p_[2];
    header = 3;
  } else if (tag == 0xDB) {
    if (Status s = need(5); !s.is_ok()) return s;
    len = static_cast<std::size_t>(p_[1]) << 24 | static_cast<std::size_t>(p_[2]) << 16 |
          static_cast<std::size_t>(p_[3]) << 8 | p_[4];
    header = 5;
  } else {
    return type_error("str", tag);
  }
  if (Status s = need(header + len); !s.is_ok()) return s;
  p_ += header;
  out.assign(reinterpret_cast<const char*>(p_), len);
  p_ += len;
  return Status::ok();
}

Status MsgReader::read_bin(std::span<const std::uint8_t>& out) {
  if (Status s = need(1); !s.is_ok()) return s;
  const std::uint8_t tag = *p_;
  std::size_t len;
  std::size_t header;
  if (tag == 0xC4) {
    if (Status s = need(2); !s.is_ok()) return s;
    len = p_[1];
    header = 2;
  } else if (tag == 0xC5) {
    if (Status s = need(3); !s.is_ok()) return s;
    len = static_cast<std::size_t>(p_[1]) << 8 | p_[2];
    header = 3;
  } else if (tag == 0xC6) {
    if (Status s = need(5); !s.is_ok()) return s;
    len = static_cast<std::size_t>(p_[1]) << 24 | static_cast<std::size_t>(p_[2]) << 16 |
          static_cast<std::size_t>(p_[3]) << 8 | p_[4];
    header = 5;
  } else {
    return type_error("bin", tag);
  }
  if (Status s = need(header + len); !s.is_ok()) return s;
  p_ += header;
  out = {p_, len};
  p_ += len;
  return Status::ok();
}

Status MsgReader::read_array(std::size_t& count) {
  if (Status s = need(1); !s.is_ok()) return s;
  const std::uint8_t tag = *p_;
  if ((tag & 0xF0) == 0x90) {
    ++p_;
    count = tag & 0x0F;
    return Status::ok();
  }
  if (tag == 0xDC) {
    if (Status s = need(3); !s.is_ok()) return s;
    ++p_;
    count = static_cast<std::size_t>(take_be(2));
    return Status::ok();
  }
  if (tag == 0xDD) {
    if (Status s = need(5); !s.is_ok()) return s;
    ++p_;
    count = static_cast<std::size_t>(take_be(4));
    return Status::ok();
  }
  return type_error("array", tag);
}

}  // namespace asyncml::transport
