#pragma once

// Typed wire schema: msgpack encodings of everything that crosses a channel.
//
// Encodings are *canonical*: for a given value the encoder always produces
// the same bytes (sparse gradient entries are emitted in ascending index
// order), so encode∘decode∘encode is byte-identical — the endpoint relay and
// the conformance/bench bit-identity checks depend on it. Double fields ride
// as msgpack float64 (exact bit pattern), and decoded gradient vectors
// preserve the source's representation (dense stays dense, sparse stays
// sparse, the configured densify threshold rides along), so decoded values —
// and their modeled `size_bytes()` — are bit-for-bit what was encoded.
//
// Payload codecs exist for the engine's gradient-bearing types (GradCount,
// GradHist, GradVector, DenseVector, ModelDelta). Any other payload type
// crosses as *opaque*: the frame carries only (kind, modeled byte size) and
// the receiver reuses its local object — honest metadata-only traffic for
// types whose bytes never mattered to the cost model (captured datasets,
// test scalars).

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "engine/payload.hpp"
#include "engine/task.hpp"
#include "engine/types.hpp"
#include "support/status.hpp"
#include "transport/frame.hpp"

namespace asyncml::linalg {
class GradVector;
}

namespace asyncml::transport {

inline constexpr std::uint32_t kProtocolVersion = 1;

// ---------------------------------------------------------------------------
// Control messages.

struct HelloMsg {
  std::uint32_t protocol = kProtocolVersion;
  std::int32_t worker = -1;
};

[[nodiscard]] std::vector<std::uint8_t> encode_hello(const HelloMsg& msg);
[[nodiscard]] support::Status decode_hello(std::span<const std::uint8_t> body,
                                           HelloMsg& out);

struct ErrorMsg {
  std::uint32_t code = 0;  ///< support::StatusCode numeric value
  std::string message;
};

[[nodiscard]] std::vector<std::uint8_t> encode_error(const ErrorMsg& msg);
[[nodiscard]] support::Status decode_error(std::span<const std::uint8_t> body,
                                           ErrorMsg& out);

/// Materializes a decoded ErrorMsg as the Status it reports (a bad code
/// byte degrades to kInternal rather than failing).
[[nodiscard]] support::Status error_to_status(const ErrorMsg& msg);

// ---------------------------------------------------------------------------
// Dispatch plane: the serializable header of a TaskSpec. The task function
// itself never crosses the wire (closures are a library artifact); the
// fields below are what a remote executor would need to schedule and seed
// the task, and they round-trip verbatim.

struct TaskSpecMsg {
  engine::TaskId id = 0;
  std::int32_t partition = engine::kNoPartition;
  std::uint64_t seq = 0;
  engine::Version model_version = 0;
  double service_floor_ms = 0.0;
  std::uint64_t rng_seed = 0;
  double migration_ms = 0.0;
};

[[nodiscard]] TaskSpecMsg to_wire(const engine::TaskSpec& spec);
/// Overwrites the wire-visible fields of `spec` with the decoded image
/// (fn/enqueued_at stay local).
void apply_wire(const TaskSpecMsg& msg, engine::TaskSpec& spec);

[[nodiscard]] std::vector<std::uint8_t> encode_task_spec(const TaskSpecMsg& msg);
[[nodiscard]] support::Status decode_task_spec(std::span<const std::uint8_t> body,
                                               TaskSpecMsg& out);

// ---------------------------------------------------------------------------
// Payload codecs.

enum class PayloadKind : std::uint8_t {
  kNone = 0,         ///< empty payload (failed task)
  kOpaque = 1,       ///< unregistered type: metadata-only
  kGradCount = 2,    ///< optim::GradCount
  kGradHist = 3,     ///< optim::GradHist
  kGradVector = 4,   ///< bare linalg::GradVector (tree-combine pieces)
  kDenseVector = 5,  ///< linalg::DenseVector (base snapshots)
  kModelDelta = 6,   ///< store::ModelDelta (delta chain)
};

struct EncodedPayload {
  PayloadKind kind = PayloadKind::kNone;
  std::uint64_t modeled_bytes = 0;  ///< the cost model's Payload::bytes()
  std::vector<std::uint8_t> body;   ///< empty for kNone/kOpaque
};

/// Serializes a payload; unregistered types yield kOpaque with an empty body.
[[nodiscard]] EncodedPayload encode_payload(const engine::Payload& payload);

/// Reconstructs a payload from its encoding. The result carries
/// `modeled_bytes` as its Payload::bytes() so charged accounting is
/// backend-invariant. kOpaque requires `opaque_source` (the local original);
/// without one it fails kInvalidArgument.
[[nodiscard]] support::StatusOr<engine::Payload> decode_payload(
    PayloadKind kind, std::span<const std::uint8_t> body, std::uint64_t modeled_bytes,
    const engine::Payload* opaque_source);

/// Decodes and canonically re-encodes a payload body without needing a local
/// object — the endpoint relay's codec-oracle step. kOpaque/kNone bodies
/// echo as empty.
[[nodiscard]] support::StatusOr<std::vector<std::uint8_t>> reencode_payload_body(
    PayloadKind kind, std::span<const std::uint8_t> body);

// ---------------------------------------------------------------------------
// Model plane: a self-delimiting payload envelope [kind, modeled_bytes,
// body] used by the broadcast/delta fetch frames.

[[nodiscard]] std::vector<std::uint8_t> encode_payload_envelope(
    const engine::Payload& payload);
[[nodiscard]] support::StatusOr<engine::Payload> decode_payload_envelope(
    std::span<const std::uint8_t> body, const engine::Payload* opaque_source);

/// Frame kind an envelope for `payload` travels under: kModelDelta for the
/// delta chain (the lz4-compressed path), kModelBase for dense snapshots,
/// kOpaque otherwise.
[[nodiscard]] FrameKind envelope_frame_kind(const engine::Payload& payload);

// ---------------------------------------------------------------------------
// Result plane.

struct TaskResultMsg {
  engine::TaskId id = 0;
  std::int32_t worker = 0;
  std::int32_t partition = engine::kNoPartition;
  std::uint64_t seq = 0;
  engine::Version model_version = 0;
  std::uint32_t status_code = 0;
  std::string status_message;
  double compute_ms = 0.0;
  double service_ms = 0.0;
  PayloadKind payload_kind = PayloadKind::kNone;
  std::uint64_t payload_modeled_bytes = 0;
  std::vector<std::uint8_t> payload_body;
};

[[nodiscard]] TaskResultMsg to_wire(const engine::TaskResult& result);
/// Rebuilds an engine result from the decoded image; `opaque_source` supplies
/// the local payload object for kOpaque. finished_at is left unset (the
/// worker stamps it at delivery).
[[nodiscard]] support::StatusOr<engine::TaskResult> from_wire(
    const TaskResultMsg& msg, const engine::Payload* opaque_source);

[[nodiscard]] std::vector<std::uint8_t> encode_task_result(const TaskResultMsg& msg);
[[nodiscard]] support::Status decode_task_result(std::span<const std::uint8_t> body,
                                                 TaskResultMsg& out);

// ---------------------------------------------------------------------------
// Endpoint relay helper: decodes a request body of `kind` and re-encodes it
// from the decoded form (full typed round trip for registered payloads).

[[nodiscard]] support::StatusOr<std::vector<std::uint8_t>> reencode_message(
    FrameKind frame_kind, std::span<const std::uint8_t> body);

}  // namespace asyncml::transport
