#include "transport/transport.hpp"

#include <atomic>
#include <utility>
#include <vector>

#include "transport/socket.hpp"

namespace asyncml::transport {

using support::Status;
using support::StatusCode;
using support::StatusOr;

const char* backend_name(Backend backend) noexcept {
  switch (backend) {
    case Backend::kInProcess: return "in-process";
    case Backend::kUnixSocket: return "unix-socket";
    case Backend::kTcp: return "tcp";
  }
  return "unknown";
}

namespace {

// The deterministic reference backend. No bytes move: ships hand the value
// straight back and report the NetworkModel charge for the caller to sleep,
// so an in-process run is bit-identical to the pre-seam engine. Wire
// counters record the *charged* (modeled) bytes with a zero-byte ack.
class InProcessChannel final : public Channel {
 public:
  InProcessChannel(engine::WorkerId worker, const engine::NetworkModel* network,
                   engine::ClusterMetrics* metrics)
      : worker_(worker), network_(network), metrics_(metrics) {}

  Status ship_task(engine::TaskSpec& spec) override {
    (void)spec;  // nothing serialized; the spec is already the decoded form
    if (dead_.load(std::memory_order_acquire)) {
      return Status(StatusCode::kUnavailable, "in-process channel killed");
    }
    if (metrics_ != nullptr) metrics_->count_wire(engine::WireChannel::kTask, 0, 0);
    return Status::ok();
  }

  StatusOr<ShipReceipt> ship_result(engine::TaskResult result) override {
    if (dead_.load(std::memory_order_acquire)) {
      return Status(StatusCode::kUnavailable, "in-process channel killed");
    }
    const std::size_t bytes = result.payload.bytes();
    if (metrics_ != nullptr) {
      metrics_->count_wire(engine::WireChannel::kResult, bytes, 0);
    }
    ShipReceipt receipt;
    // Payload-less results (failed tasks) transfer nothing — matching the
    // channel-less legacy path exactly, latency term included.
    receipt.charge_ms = network_ != nullptr && result.payload.has_value()
                            ? network_->transfer_ms(bytes)
                            : 0.0;
    receipt.result = std::move(result);
    return receipt;
  }

  StatusOr<FetchReceipt> fetch_payload(const engine::Payload& payload,
                                       engine::BroadcastClass cls) override {
    (void)cls;
    if (dead_.load(std::memory_order_acquire)) {
      return Status(StatusCode::kUnavailable, "in-process channel killed");
    }
    const std::size_t bytes = payload.bytes();
    if (metrics_ != nullptr) {
      metrics_->count_wire(engine::WireChannel::kModel, bytes, 0);
    }
    FetchReceipt receipt;
    receipt.charge_ms = network_ != nullptr ? network_->transfer_ms(bytes) : 0.0;
    receipt.payload = payload;
    return receipt;
  }

  [[nodiscard]] bool alive() const override {
    return !dead_.load(std::memory_order_acquire);
  }
  [[nodiscard]] bool is_wire() const override { return false; }
  [[nodiscard]] engine::WorkerId worker() const override { return worker_; }

  void kill() { dead_.store(true, std::memory_order_release); }

 private:
  engine::WorkerId worker_;
  const engine::NetworkModel* network_;
  engine::ClusterMetrics* metrics_;
  std::atomic<bool> dead_{false};
};

class InProcessTransport final : public Transport {
 public:
  InProcessTransport(int num_workers, const engine::NetworkModel* network,
                     engine::ClusterMetrics* metrics) {
    channels_.reserve(static_cast<std::size_t>(num_workers));
    for (int w = 0; w < num_workers; ++w) {
      channels_.push_back(std::make_unique<InProcessChannel>(w, network, metrics));
    }
  }

  Status start() override { return Status::ok(); }
  void stop() override {}

  Channel& channel(engine::WorkerId worker) override {
    return *channels_[static_cast<std::size_t>(worker)];
  }

  [[nodiscard]] Backend backend() const override { return Backend::kInProcess; }

  void kill_worker(engine::WorkerId worker) override {
    if (worker >= 0 && static_cast<std::size_t>(worker) < channels_.size()) {
      channels_[static_cast<std::size_t>(worker)]->kill();
    }
  }

 private:
  std::vector<std::unique_ptr<InProcessChannel>> channels_;
};

}  // namespace

std::unique_ptr<Transport> make_transport(const TransportConfig& config,
                                          int num_workers,
                                          const engine::NetworkModel* network,
                                          engine::ClusterMetrics* metrics) {
  if (config.backend == Backend::kInProcess) {
    return std::make_unique<InProcessTransport>(num_workers, network, metrics);
  }
  return make_socket_transport(config, num_workers, metrics);
}

}  // namespace asyncml::transport
