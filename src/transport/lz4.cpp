#include "transport/lz4.hpp"

#include <cstring>

namespace asyncml::transport {

using support::Status;
using support::StatusCode;

namespace {

constexpr std::size_t kHashBits = 13;
constexpr std::size_t kMinMatch = 4;
// Format end-of-block rules: the last 5 bytes are always literals and the
// last match must not start within the final 12 bytes.
constexpr std::size_t kLastLiterals = 5;
constexpr std::size_t kMfLimit = 12;
constexpr std::size_t kMaxOffset = 65535;

std::uint32_t load32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

std::uint32_t hash4(std::uint32_t v) {
  return (v * 2654435761u) >> (32 - kHashBits);
}

void emit_length(std::vector<std::uint8_t>& out, std::size_t len) {
  while (len >= 255) {
    out.push_back(255);
    len -= 255;
  }
  out.push_back(static_cast<std::uint8_t>(len));
}

void emit_sequence(std::vector<std::uint8_t>& out, const std::uint8_t* lit,
                   std::size_t lit_len, std::size_t match_len, std::size_t offset) {
  const std::size_t lit_nibble = lit_len < 15 ? lit_len : 15;
  std::size_t match_nibble = 0;
  if (match_len > 0) {
    const std::size_t m = match_len - kMinMatch;
    match_nibble = m < 15 ? m : 15;
  }
  out.push_back(static_cast<std::uint8_t>(lit_nibble << 4 | match_nibble));
  if (lit_nibble == 15) emit_length(out, lit_len - 15);
  out.insert(out.end(), lit, lit + lit_len);
  if (match_len == 0) return;  // final literal-only sequence
  out.push_back(static_cast<std::uint8_t>(offset));
  out.push_back(static_cast<std::uint8_t>(offset >> 8));
  if (match_nibble == 15) emit_length(out, match_len - kMinMatch - 15);
}

}  // namespace

std::vector<std::uint8_t> lz4_compress(std::span<const std::uint8_t> src) {
  std::vector<std::uint8_t> out;
  out.reserve(lz4_compress_bound(src.size()));
  const std::size_t n = src.size();
  const std::uint8_t* base = src.data();

  if (n < kMfLimit + 1) {
    emit_sequence(out, base, n, 0, 0);
    return out;
  }

  // Positions stored +1 so 0 means "empty slot"; stale entries are verified
  // byte-for-byte before use.
  std::vector<std::uint32_t> table(std::size_t{1} << kHashBits, 0u);
  const std::size_t mflimit = n - kMfLimit;
  const std::size_t match_limit = n - kLastLiterals;
  std::size_t anchor = 0;
  std::size_t i = 0;
  while (i < mflimit) {
    const std::uint32_t h = hash4(load32(base + i));
    const std::uint32_t cand = table[h];
    table[h] = static_cast<std::uint32_t>(i + 1);
    if (cand != 0) {
      const std::size_t c = cand - 1;
      const std::size_t offset = i - c;
      if (offset > 0 && offset <= kMaxOffset && load32(base + c) == load32(base + i)) {
        std::size_t len = kMinMatch;
        while (i + len < match_limit && base[c + len] == base[i + len]) ++len;
        emit_sequence(out, base + anchor, i - anchor, len, offset);
        i += len;
        anchor = i;
        continue;
      }
    }
    ++i;
  }
  emit_sequence(out, base + anchor, n - anchor, 0, 0);
  return out;
}

Status lz4_decompress(std::span<const std::uint8_t> src, std::span<std::uint8_t> dst) {
  const std::size_t slen = src.size();
  const std::size_t dlen = dst.size();
  std::size_t ip = 0;
  std::size_t op = 0;

  if (slen == 0) {
    return dlen == 0 ? Status::ok()
                     : Status(StatusCode::kInvalidArgument, "lz4: empty block, nonzero raw size");
  }

  while (ip < slen) {
    const std::uint8_t token = src[ip++];

    std::size_t lit = token >> 4;
    if (lit == 15) {
      std::uint8_t b;
      do {
        if (ip >= slen) {
          return Status(StatusCode::kInvalidArgument, "lz4: truncated literal length");
        }
        b = src[ip++];
        lit += b;
      } while (b == 255);
    }
    if (lit > slen - ip) {
      return Status(StatusCode::kInvalidArgument, "lz4: literal run past input end");
    }
    if (lit > dlen - op) {
      return Status(StatusCode::kInvalidArgument, "lz4: literal run past output end");
    }
    std::memcpy(dst.data() + op, src.data() + ip, lit);
    ip += lit;
    op += lit;

    if (ip == slen) break;  // literal-only final sequence

    if (slen - ip < 2) {
      return Status(StatusCode::kInvalidArgument, "lz4: truncated match offset");
    }
    const std::size_t offset =
        static_cast<std::size_t>(src[ip]) | static_cast<std::size_t>(src[ip + 1]) << 8;
    ip += 2;
    if (offset == 0 || offset > op) {
      return Status(StatusCode::kInvalidArgument, "lz4: match offset outside written prefix");
    }

    std::size_t match_len = (token & 0x0Fu) + kMinMatch;
    if ((token & 0x0Fu) == 15) {
      std::uint8_t b;
      do {
        if (ip >= slen) {
          return Status(StatusCode::kInvalidArgument, "lz4: truncated match length");
        }
        b = src[ip++];
        match_len += b;
      } while (b == 255);
    }
    if (match_len > dlen - op) {
      return Status(StatusCode::kInvalidArgument, "lz4: match run past output end");
    }
    // Byte-wise copy: overlapping matches (offset < match_len) replicate the
    // just-written bytes, which is the format's RLE mechanism.
    const std::size_t from = op - offset;
    for (std::size_t k = 0; k < match_len; ++k) {
      dst[op + k] = dst[from + k];
    }
    op += match_len;
  }

  if (op != dlen) {
    return Status(StatusCode::kInvalidArgument,
                  "lz4: decompressed size mismatch (got " + std::to_string(op) +
                      ", expected " + std::to_string(dlen) + ")");
  }
  return Status::ok();
}

}  // namespace asyncml::transport
