#include "transport/wire.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <utility>

#include "linalg/dense_vector.hpp"
#include "linalg/grad_vector.hpp"
#include "optim/payloads.hpp"
#include "store/model_delta.hpp"
#include "transport/msgpack.hpp"

namespace asyncml::transport {

using support::Status;
using support::StatusCode;
using support::StatusOr;

namespace {

Status bad(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}

// Raw little-endian array bins: multi-gigabyte gradient data rides as flat
// bins (one memcpy each way), not per-element msgpack. Both endpoints run on
// the same host architecture; the grammar in docs/TRANSPORT.md records the
// byte order explicitly.
void write_u32_bin(MsgWriter& w, std::span<const std::uint32_t> values) {
  w.write_bin({reinterpret_cast<const std::uint8_t*>(values.data()),
               values.size() * sizeof(std::uint32_t)});
}

void write_f64_bin(MsgWriter& w, std::span<const double> values) {
  w.write_bin({reinterpret_cast<const std::uint8_t*>(values.data()),
               values.size() * sizeof(double)});
}

std::uint32_t read_u32_at(std::span<const std::uint8_t> bin, std::size_t i) {
  std::uint32_t v;
  std::memcpy(&v, bin.data() + i * sizeof(v), sizeof(v));
  return v;
}

double read_f64_at(std::span<const std::uint8_t> bin, std::size_t i) {
  double v;
  std::memcpy(&v, bin.data() + i * sizeof(v), sizeof(v));
  return v;
}

// --- GradVector ------------------------------------------------------------
// [dim, dense?, densify_threshold, start_dense?, bin indices, bin values]

void encode_grad_vector(MsgWriter& w, const linalg::GradVector& g) {
  w.begin_array(6);
  w.write_uint(g.dim());
  w.write_bool(g.is_dense());
  w.write_double(g.config().densify_threshold);
  w.write_bool(g.config().start_dense);
  if (g.is_dense()) {
    // nnz() is 0 for an untouched dense accumulator (no storage, ships 0
    // bytes) and dim once storage exists; the value bin mirrors that.
    std::vector<double> values;
    if (g.nnz() != 0) {
      values.reserve(g.dim());
      values.resize(g.dim());
      g.for_each([&](std::uint32_t i, double v) { values[i] = v; });
    }
    w.write_bin({});
    write_f64_bin(w, values);
    return;
  }
  // Canonical form: ascending index order regardless of table layout.
  std::vector<std::pair<std::uint32_t, double>> entries;
  entries.reserve(g.nnz());
  g.for_each([&](std::uint32_t i, double v) { entries.emplace_back(i, v); });
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<std::uint32_t> indices;
  std::vector<double> values;
  indices.reserve(entries.size());
  values.reserve(entries.size());
  for (const auto& [i, v] : entries) {
    indices.push_back(i);
    values.push_back(v);
  }
  write_u32_bin(w, indices);
  write_f64_bin(w, values);
}

Status decode_grad_vector(MsgReader& r, linalg::GradVector& out) {
  std::size_t arity = 0;
  if (Status s = r.read_array(arity); !s.is_ok()) return s;
  if (arity != 6) return bad("gradvector: expected 6-element array");
  std::uint64_t dim = 0;
  bool dense = false;
  double threshold = 0.0;
  bool start_dense = false;
  std::span<const std::uint8_t> idx_bin;
  std::span<const std::uint8_t> val_bin;
  if (Status s = r.read_uint(dim); !s.is_ok()) return s;
  if (Status s = r.read_bool(dense); !s.is_ok()) return s;
  if (Status s = r.read_double(threshold); !s.is_ok()) return s;
  if (Status s = r.read_bool(start_dense); !s.is_ok()) return s;
  if (Status s = r.read_bin(idx_bin); !s.is_ok()) return s;
  if (Status s = r.read_bin(val_bin); !s.is_ok()) return s;

  if (dim > 0xFFFFFFFFull) return bad("gradvector: dim exceeds u32 index space");
  if (!std::isfinite(threshold) || threshold < 0.0) {
    return bad("gradvector: non-finite densify threshold");
  }
  if (dim == 0) {
    if (dense || !idx_bin.empty() || !val_bin.empty()) {
      return bad("gradvector: entries on a zero-dim vector");
    }
    out = linalg::GradVector();
    return Status::ok();
  }

  if (dense) {
    if (!idx_bin.empty()) return bad("gradvector: dense form carries indices");
    if (val_bin.empty()) {
      // Untouched dense accumulator: representation is dense with no
      // storage, which only a dense-start config can hold.
      if (!start_dense) return bad("gradvector: storage-free dense needs start_dense");
      out = linalg::GradVector(
          linalg::GradVectorConfig(static_cast<std::size_t>(dim), threshold, true));
      return Status::ok();
    }
    if (val_bin.size() != dim * sizeof(double)) {
      return bad("gradvector: dense value bin size mismatch");
    }
    linalg::GradVector g(
        linalg::GradVectorConfig(static_cast<std::size_t>(dim), threshold, start_dense));
    g.assign_dense({reinterpret_cast<const double*>(val_bin.data()),
                    static_cast<std::size_t>(dim)});
    out = std::move(g);
    return Status::ok();
  }

  if (idx_bin.size() % sizeof(std::uint32_t) != 0) {
    return bad("gradvector: index bin not a multiple of 4");
  }
  const std::size_t nnz = idx_bin.size() / sizeof(std::uint32_t);
  if (val_bin.size() != nnz * sizeof(double)) {
    return bad("gradvector: sparse value bin size mismatch");
  }
  // Re-inserting through set() must never densify: a split-range piece may
  // legitimately hold nnz above threshold*dim (split pieces keep their
  // encoding), so the working threshold is raised just far enough while a
  // within-threshold vector keeps its original config bit-for-bit.
  const double floor_threshold =
      (static_cast<double>(nnz) + 1.0) / static_cast<double>(dim);
  linalg::GradVectorConfig cfg(static_cast<std::size_t>(dim),
                               std::max(threshold, floor_threshold), false);
  cfg.expected_nnz = nnz;
  linalg::GradVector g(cfg);
  std::uint32_t prev = 0;
  for (std::size_t k = 0; k < nnz; ++k) {
    const std::uint32_t idx = read_u32_at(idx_bin, k);
    if (idx >= dim) return bad("gradvector: index out of range");
    if (k > 0 && idx <= prev) return bad("gradvector: indices not strictly ascending");
    prev = idx;
    g.set(idx, read_f64_at(val_bin, k));
  }
  out = std::move(g);
  return Status::ok();
}

// --- DenseVector -----------------------------------------------------------

void encode_dense_vector(MsgWriter& w, const linalg::DenseVector& v) {
  w.begin_array(2);
  w.write_uint(v.size());
  write_f64_bin(w, v.span());
}

Status decode_dense_vector(MsgReader& r, linalg::DenseVector& out) {
  std::size_t arity = 0;
  if (Status s = r.read_array(arity); !s.is_ok()) return s;
  if (arity != 2) return bad("densevector: expected 2-element array");
  std::uint64_t size = 0;
  std::span<const std::uint8_t> bin;
  if (Status s = r.read_uint(size); !s.is_ok()) return s;
  if (Status s = r.read_bin(bin); !s.is_ok()) return s;
  if (bin.size() != size * sizeof(double)) {
    return bad("densevector: value bin size mismatch");
  }
  linalg::DenseVector v(static_cast<std::size_t>(size));
  if (size > 0) std::memcpy(v.data(), bin.data(), bin.size());
  out = std::move(v);
  return Status::ok();
}

// --- GradCount / GradHist / ModelDelta ------------------------------------

void encode_grad_count(MsgWriter& w, const optim::GradCount& g) {
  w.begin_array(2);
  encode_grad_vector(w, g.grad);
  w.write_uint(g.count);
}

Status decode_grad_count(MsgReader& r, optim::GradCount& out) {
  std::size_t arity = 0;
  if (Status s = r.read_array(arity); !s.is_ok()) return s;
  if (arity != 2) return bad("gradcount: expected 2-element array");
  if (Status s = decode_grad_vector(r, out.grad); !s.is_ok()) return s;
  return r.read_uint(out.count);
}

void encode_grad_hist(MsgWriter& w, const optim::GradHist& g) {
  w.begin_array(3);
  encode_grad_vector(w, g.grad);
  encode_grad_vector(w, g.hist);
  w.write_uint(g.count);
}

Status decode_grad_hist(MsgReader& r, optim::GradHist& out) {
  std::size_t arity = 0;
  if (Status s = r.read_array(arity); !s.is_ok()) return s;
  if (arity != 3) return bad("gradhist: expected 3-element array");
  if (Status s = decode_grad_vector(r, out.grad); !s.is_ok()) return s;
  if (Status s = decode_grad_vector(r, out.hist); !s.is_ok()) return s;
  return r.read_uint(out.count);
}

void encode_model_delta(MsgWriter& w, const store::ModelDelta& d) {
  w.begin_array(2);
  w.write_uint(d.parent);
  encode_grad_vector(w, d.values);
}

Status decode_model_delta(MsgReader& r, store::ModelDelta& out) {
  std::size_t arity = 0;
  if (Status s = r.read_array(arity); !s.is_ok()) return s;
  if (arity != 2) return bad("modeldelta: expected 2-element array");
  std::uint64_t parent = 0;
  if (Status s = r.read_uint(parent); !s.is_ok()) return s;
  if (Status s = decode_grad_vector(r, out.values); !s.is_ok()) return s;
  if (out.values.is_dense()) return bad("modeldelta: values must stay sparse");
  out.parent = parent;
  return Status::ok();
}

Status expect_end(const MsgReader& r, const char* what) {
  if (!r.at_end()) {
    return bad(std::string(what) + ": trailing bytes after message");
  }
  return Status::ok();
}

}  // namespace

// --- Hello / Error ---------------------------------------------------------

std::vector<std::uint8_t> encode_hello(const HelloMsg& msg) {
  MsgWriter w;
  w.begin_array(2);
  w.write_uint(msg.protocol);
  w.write_int(msg.worker);
  return w.take();
}

Status decode_hello(std::span<const std::uint8_t> body, HelloMsg& out) {
  MsgReader r(body);
  std::size_t arity = 0;
  if (Status s = r.read_array(arity); !s.is_ok()) return s;
  if (arity != 2) return bad("hello: expected 2-element array");
  std::uint64_t protocol = 0;
  std::int64_t worker = 0;
  if (Status s = r.read_uint(protocol); !s.is_ok()) return s;
  if (Status s = r.read_int(worker); !s.is_ok()) return s;
  if (protocol > 0xFFFFFFFFull) return bad("hello: protocol overflows u32");
  if (worker < -1 || worker > 0x7FFFFFFF) return bad("hello: worker id out of range");
  out.protocol = static_cast<std::uint32_t>(protocol);
  out.worker = static_cast<std::int32_t>(worker);
  return expect_end(r, "hello");
}

std::vector<std::uint8_t> encode_error(const ErrorMsg& msg) {
  MsgWriter w;
  w.begin_array(2);
  w.write_uint(msg.code);
  w.write_str(msg.message);
  return w.take();
}

Status decode_error(std::span<const std::uint8_t> body, ErrorMsg& out) {
  MsgReader r(body);
  std::size_t arity = 0;
  if (Status s = r.read_array(arity); !s.is_ok()) return s;
  if (arity != 2) return bad("error: expected 2-element array");
  std::uint64_t code = 0;
  if (Status s = r.read_uint(code); !s.is_ok()) return s;
  if (Status s = r.read_str(out.message); !s.is_ok()) return s;
  if (code > 0xFFFFFFFFull) return bad("error: code overflows u32");
  out.code = static_cast<std::uint32_t>(code);
  return expect_end(r, "error");
}

Status error_to_status(const ErrorMsg& msg) {
  const auto code = msg.code <= static_cast<std::uint32_t>(StatusCode::kUnavailable)
                        ? static_cast<StatusCode>(msg.code)
                        : StatusCode::kInternal;
  return Status(code == StatusCode::kOk ? StatusCode::kInternal : code, msg.message);
}

// --- TaskSpec --------------------------------------------------------------

TaskSpecMsg to_wire(const engine::TaskSpec& spec) {
  TaskSpecMsg msg;
  msg.id = spec.id;
  msg.partition = spec.partition;
  msg.seq = spec.seq;
  msg.model_version = spec.model_version;
  msg.service_floor_ms = spec.service_floor_ms;
  msg.rng_seed = spec.rng_seed;
  msg.migration_ms = spec.migration_ms;
  return msg;
}

void apply_wire(const TaskSpecMsg& msg, engine::TaskSpec& spec) {
  spec.id = msg.id;
  spec.partition = msg.partition;
  spec.seq = msg.seq;
  spec.model_version = msg.model_version;
  spec.service_floor_ms = msg.service_floor_ms;
  spec.rng_seed = msg.rng_seed;
  spec.migration_ms = msg.migration_ms;
}

std::vector<std::uint8_t> encode_task_spec(const TaskSpecMsg& msg) {
  MsgWriter w;
  w.begin_array(7);
  w.write_uint(msg.id);
  w.write_int(msg.partition);
  w.write_uint(msg.seq);
  w.write_uint(msg.model_version);
  w.write_double(msg.service_floor_ms);
  w.write_uint(msg.rng_seed);
  w.write_double(msg.migration_ms);
  return w.take();
}

Status decode_task_spec(std::span<const std::uint8_t> body, TaskSpecMsg& out) {
  MsgReader r(body);
  std::size_t arity = 0;
  if (Status s = r.read_array(arity); !s.is_ok()) return s;
  if (arity != 7) return bad("taskspec: expected 7-element array");
  std::int64_t partition = 0;
  if (Status s = r.read_uint(out.id); !s.is_ok()) return s;
  if (Status s = r.read_int(partition); !s.is_ok()) return s;
  if (Status s = r.read_uint(out.seq); !s.is_ok()) return s;
  if (Status s = r.read_uint(out.model_version); !s.is_ok()) return s;
  if (Status s = r.read_double(out.service_floor_ms); !s.is_ok()) return s;
  if (Status s = r.read_uint(out.rng_seed); !s.is_ok()) return s;
  if (Status s = r.read_double(out.migration_ms); !s.is_ok()) return s;
  if (partition < -1 || partition > 0x7FFFFFFF) {
    return bad("taskspec: partition out of range");
  }
  out.partition = static_cast<std::int32_t>(partition);
  return expect_end(r, "taskspec");
}

// --- Payload codecs --------------------------------------------------------

EncodedPayload encode_payload(const engine::Payload& payload) {
  EncodedPayload out;
  out.modeled_bytes = payload.bytes();
  if (!payload.has_value()) {
    out.kind = PayloadKind::kNone;
    return out;
  }
  MsgWriter w;
  if (payload.holds<optim::GradCount>()) {
    out.kind = PayloadKind::kGradCount;
    encode_grad_count(w, payload.get<optim::GradCount>());
  } else if (payload.holds<optim::GradHist>()) {
    out.kind = PayloadKind::kGradHist;
    encode_grad_hist(w, payload.get<optim::GradHist>());
  } else if (payload.holds<linalg::GradVector>()) {
    out.kind = PayloadKind::kGradVector;
    encode_grad_vector(w, payload.get<linalg::GradVector>());
  } else if (payload.holds<linalg::DenseVector>()) {
    out.kind = PayloadKind::kDenseVector;
    encode_dense_vector(w, payload.get<linalg::DenseVector>());
  } else if (payload.holds<store::ModelDelta>()) {
    out.kind = PayloadKind::kModelDelta;
    encode_model_delta(w, payload.get<store::ModelDelta>());
  } else {
    out.kind = PayloadKind::kOpaque;
    return out;
  }
  out.body = w.take();
  return out;
}

StatusOr<engine::Payload> decode_payload(PayloadKind kind,
                                         std::span<const std::uint8_t> body,
                                         std::uint64_t modeled_bytes,
                                         const engine::Payload* opaque_source) {
  const auto bytes = static_cast<std::size_t>(modeled_bytes);
  switch (kind) {
    case PayloadKind::kNone:
      if (!body.empty()) return bad("payload: kNone with nonempty body");
      return engine::Payload();
    case PayloadKind::kOpaque: {
      if (!body.empty()) return bad("payload: kOpaque with nonempty body");
      if (opaque_source == nullptr || !opaque_source->has_value()) {
        return bad("payload: opaque kind without a local source object");
      }
      return *opaque_source;
    }
    case PayloadKind::kGradCount: {
      MsgReader r(body);
      optim::GradCount value;
      if (Status s = decode_grad_count(r, value); !s.is_ok()) return s;
      if (Status s = expect_end(r, "gradcount"); !s.is_ok()) return s;
      return engine::Payload::wrap(std::move(value), bytes);
    }
    case PayloadKind::kGradHist: {
      MsgReader r(body);
      optim::GradHist value;
      if (Status s = decode_grad_hist(r, value); !s.is_ok()) return s;
      if (Status s = expect_end(r, "gradhist"); !s.is_ok()) return s;
      return engine::Payload::wrap(std::move(value), bytes);
    }
    case PayloadKind::kGradVector: {
      MsgReader r(body);
      linalg::GradVector value;
      if (Status s = decode_grad_vector(r, value); !s.is_ok()) return s;
      if (Status s = expect_end(r, "gradvector"); !s.is_ok()) return s;
      return engine::Payload::wrap(std::move(value), bytes);
    }
    case PayloadKind::kDenseVector: {
      MsgReader r(body);
      linalg::DenseVector value;
      if (Status s = decode_dense_vector(r, value); !s.is_ok()) return s;
      if (Status s = expect_end(r, "densevector"); !s.is_ok()) return s;
      return engine::Payload::wrap(std::move(value), bytes);
    }
    case PayloadKind::kModelDelta: {
      MsgReader r(body);
      store::ModelDelta value;
      if (Status s = decode_model_delta(r, value); !s.is_ok()) return s;
      if (Status s = expect_end(r, "modeldelta"); !s.is_ok()) return s;
      return engine::Payload::wrap(std::move(value), bytes);
    }
  }
  return bad("payload: unknown kind " + std::to_string(static_cast<int>(kind)));
}

StatusOr<std::vector<std::uint8_t>> reencode_payload_body(
    PayloadKind kind, std::span<const std::uint8_t> body) {
  MsgWriter w;
  switch (kind) {
    case PayloadKind::kNone:
    case PayloadKind::kOpaque:
      if (!body.empty()) return bad("payload: metadata-only kind with body");
      return std::vector<std::uint8_t>{};
    case PayloadKind::kGradCount: {
      MsgReader r(body);
      optim::GradCount value;
      if (Status s = decode_grad_count(r, value); !s.is_ok()) return s;
      if (Status s = expect_end(r, "gradcount"); !s.is_ok()) return s;
      encode_grad_count(w, value);
      return w.take();
    }
    case PayloadKind::kGradHist: {
      MsgReader r(body);
      optim::GradHist value;
      if (Status s = decode_grad_hist(r, value); !s.is_ok()) return s;
      if (Status s = expect_end(r, "gradhist"); !s.is_ok()) return s;
      encode_grad_hist(w, value);
      return w.take();
    }
    case PayloadKind::kGradVector: {
      MsgReader r(body);
      linalg::GradVector value;
      if (Status s = decode_grad_vector(r, value); !s.is_ok()) return s;
      if (Status s = expect_end(r, "gradvector"); !s.is_ok()) return s;
      encode_grad_vector(w, value);
      return w.take();
    }
    case PayloadKind::kDenseVector: {
      MsgReader r(body);
      linalg::DenseVector value;
      if (Status s = decode_dense_vector(r, value); !s.is_ok()) return s;
      if (Status s = expect_end(r, "densevector"); !s.is_ok()) return s;
      encode_dense_vector(w, value);
      return w.take();
    }
    case PayloadKind::kModelDelta: {
      MsgReader r(body);
      store::ModelDelta value;
      if (Status s = decode_model_delta(r, value); !s.is_ok()) return s;
      if (Status s = expect_end(r, "modeldelta"); !s.is_ok()) return s;
      encode_model_delta(w, value);
      return w.take();
    }
  }
  return bad("payload: unknown kind " + std::to_string(static_cast<int>(kind)));
}

// --- Payload envelope ------------------------------------------------------

std::vector<std::uint8_t> encode_payload_envelope(const engine::Payload& payload) {
  EncodedPayload encoded = encode_payload(payload);
  MsgWriter w;
  w.begin_array(3);
  w.write_uint(static_cast<std::uint64_t>(encoded.kind));
  w.write_uint(encoded.modeled_bytes);
  w.write_bin(encoded.body);
  return w.take();
}

namespace {

Status parse_envelope(std::span<const std::uint8_t> body, PayloadKind& kind,
                      std::uint64_t& modeled_bytes,
                      std::span<const std::uint8_t>& payload_body) {
  MsgReader r(body);
  std::size_t arity = 0;
  if (Status s = r.read_array(arity); !s.is_ok()) return s;
  if (arity != 3) return bad("envelope: expected 3-element array");
  std::uint64_t kind_raw = 0;
  if (Status s = r.read_uint(kind_raw); !s.is_ok()) return s;
  if (Status s = r.read_uint(modeled_bytes); !s.is_ok()) return s;
  if (Status s = r.read_bin(payload_body); !s.is_ok()) return s;
  if (kind_raw > static_cast<std::uint64_t>(PayloadKind::kModelDelta)) {
    return bad("envelope: unknown payload kind " + std::to_string(kind_raw));
  }
  kind = static_cast<PayloadKind>(kind_raw);
  return expect_end(r, "envelope");
}

}  // namespace

StatusOr<engine::Payload> decode_payload_envelope(std::span<const std::uint8_t> body,
                                                  const engine::Payload* opaque_source) {
  PayloadKind kind = PayloadKind::kNone;
  std::uint64_t modeled_bytes = 0;
  std::span<const std::uint8_t> payload_body;
  if (Status s = parse_envelope(body, kind, modeled_bytes, payload_body); !s.is_ok()) {
    return s;
  }
  return decode_payload(kind, payload_body, modeled_bytes, opaque_source);
}

FrameKind envelope_frame_kind(const engine::Payload& payload) {
  if (payload.holds<store::ModelDelta>()) return FrameKind::kModelDelta;
  if (payload.holds<linalg::DenseVector>()) return FrameKind::kModelBase;
  return FrameKind::kOpaque;
}

// --- TaskResult ------------------------------------------------------------

TaskResultMsg to_wire(const engine::TaskResult& result) {
  TaskResultMsg msg;
  msg.id = result.id;
  msg.worker = result.worker;
  msg.partition = result.partition;
  msg.seq = result.seq;
  msg.model_version = result.model_version;
  msg.status_code = static_cast<std::uint32_t>(result.status.code());
  msg.status_message = result.status.message();
  msg.compute_ms = result.compute_ms;
  msg.service_ms = result.service_ms;
  EncodedPayload encoded = encode_payload(result.payload);
  msg.payload_kind = encoded.kind;
  msg.payload_modeled_bytes = encoded.modeled_bytes;
  msg.payload_body = std::move(encoded.body);
  return msg;
}

StatusOr<engine::TaskResult> from_wire(const TaskResultMsg& msg,
                                       const engine::Payload* opaque_source) {
  if (msg.status_code > static_cast<std::uint32_t>(StatusCode::kUnavailable)) {
    return bad("taskresult: unknown status code " + std::to_string(msg.status_code));
  }
  engine::TaskResult result;
  result.id = msg.id;
  result.worker = msg.worker;
  result.partition = msg.partition;
  result.seq = msg.seq;
  result.model_version = msg.model_version;
  result.status = Status(static_cast<StatusCode>(msg.status_code), msg.status_message);
  result.compute_ms = msg.compute_ms;
  result.service_ms = msg.service_ms;
  auto payload = decode_payload(msg.payload_kind, msg.payload_body,
                                msg.payload_modeled_bytes, opaque_source);
  if (!payload.is_ok()) return payload.status();
  result.payload = std::move(payload).value();
  return result;
}

std::vector<std::uint8_t> encode_task_result(const TaskResultMsg& msg) {
  MsgWriter w;
  w.begin_array(12);
  w.write_uint(msg.id);
  w.write_int(msg.worker);
  w.write_int(msg.partition);
  w.write_uint(msg.seq);
  w.write_uint(msg.model_version);
  w.write_uint(msg.status_code);
  w.write_str(msg.status_message);
  w.write_double(msg.compute_ms);
  w.write_double(msg.service_ms);
  w.write_uint(static_cast<std::uint64_t>(msg.payload_kind));
  w.write_uint(msg.payload_modeled_bytes);
  w.write_bin(msg.payload_body);
  return w.take();
}

Status decode_task_result(std::span<const std::uint8_t> body, TaskResultMsg& out) {
  MsgReader r(body);
  std::size_t arity = 0;
  if (Status s = r.read_array(arity); !s.is_ok()) return s;
  if (arity != 12) return bad("taskresult: expected 12-element array");
  std::int64_t worker = 0;
  std::int64_t partition = 0;
  std::uint64_t status_code = 0;
  std::uint64_t payload_kind = 0;
  std::span<const std::uint8_t> payload_bin;
  if (Status s = r.read_uint(out.id); !s.is_ok()) return s;
  if (Status s = r.read_int(worker); !s.is_ok()) return s;
  if (Status s = r.read_int(partition); !s.is_ok()) return s;
  if (Status s = r.read_uint(out.seq); !s.is_ok()) return s;
  if (Status s = r.read_uint(out.model_version); !s.is_ok()) return s;
  if (Status s = r.read_uint(status_code); !s.is_ok()) return s;
  if (Status s = r.read_str(out.status_message); !s.is_ok()) return s;
  if (Status s = r.read_double(out.compute_ms); !s.is_ok()) return s;
  if (Status s = r.read_double(out.service_ms); !s.is_ok()) return s;
  if (Status s = r.read_uint(payload_kind); !s.is_ok()) return s;
  if (Status s = r.read_uint(out.payload_modeled_bytes); !s.is_ok()) return s;
  if (Status s = r.read_bin(payload_bin); !s.is_ok()) return s;
  if (worker < -1 || worker > 0x7FFFFFFF) return bad("taskresult: worker out of range");
  if (partition < -1 || partition > 0x7FFFFFFF) {
    return bad("taskresult: partition out of range");
  }
  if (status_code > static_cast<std::uint64_t>(StatusCode::kUnavailable)) {
    return bad("taskresult: unknown status code");
  }
  if (payload_kind > static_cast<std::uint64_t>(PayloadKind::kModelDelta)) {
    return bad("taskresult: unknown payload kind");
  }
  out.worker = static_cast<std::int32_t>(worker);
  out.partition = static_cast<std::int32_t>(partition);
  out.status_code = static_cast<std::uint32_t>(status_code);
  out.payload_kind = static_cast<PayloadKind>(payload_kind);
  out.payload_body.assign(payload_bin.begin(), payload_bin.end());
  return expect_end(r, "taskresult");
}

// --- Endpoint relay --------------------------------------------------------

StatusOr<std::vector<std::uint8_t>> reencode_message(FrameKind frame_kind,
                                                     std::span<const std::uint8_t> body) {
  switch (frame_kind) {
    case FrameKind::kHello: {
      HelloMsg msg;
      if (Status s = decode_hello(body, msg); !s.is_ok()) return s;
      if (msg.protocol != kProtocolVersion) {
        return Status(StatusCode::kFailedPrecondition,
                      "protocol version mismatch: got " + std::to_string(msg.protocol) +
                          ", want " + std::to_string(kProtocolVersion));
      }
      return encode_hello(msg);
    }
    case FrameKind::kTaskSpec: {
      TaskSpecMsg msg;
      if (Status s = decode_task_spec(body, msg); !s.is_ok()) return s;
      return encode_task_spec(msg);
    }
    case FrameKind::kTaskResult: {
      TaskResultMsg msg;
      if (Status s = decode_task_result(body, msg); !s.is_ok()) return s;
      auto payload = reencode_payload_body(msg.payload_kind, msg.payload_body);
      if (!payload.is_ok()) return payload.status();
      msg.payload_body = std::move(payload).value();
      return encode_task_result(msg);
    }
    case FrameKind::kModelBase:
    case FrameKind::kModelDelta:
    case FrameKind::kOpaque: {
      PayloadKind kind = PayloadKind::kNone;
      std::uint64_t modeled_bytes = 0;
      std::span<const std::uint8_t> payload_body;
      if (Status s = parse_envelope(body, kind, modeled_bytes, payload_body);
          !s.is_ok()) {
        return s;
      }
      auto reencoded = reencode_payload_body(kind, payload_body);
      if (!reencoded.is_ok()) return reencoded.status();
      MsgWriter w;
      w.begin_array(3);
      w.write_uint(static_cast<std::uint64_t>(kind));
      w.write_uint(modeled_bytes);
      w.write_bin(reencoded.value());
      return w.take();
    }
    case FrameKind::kShutdown:
      if (!body.empty()) return bad("shutdown: expected empty body");
      return std::vector<std::uint8_t>{};
    case FrameKind::kError: {
      ErrorMsg msg;
      if (Status s = decode_error(body, msg); !s.is_ok()) return s;
      return encode_error(msg);
    }
  }
  return bad("unknown frame kind");
}

}  // namespace asyncml::transport
