#pragma once

// LZ4 block-format codec, implemented in-tree.
//
// The container ships no lz4 library, so the transport carries its own
// implementation of the LZ4 *block* format (token / literals / 16-bit offset
// / match sequences). The compressor is a greedy single-pass hash-table
// matcher — deterministic for a given input, which the canonical-encoding
// tests rely on. The decompressor is strictly bounds-checked on both input
// and output and returns Status on any malformed block: truncated literal or
// match runs, offsets past the written prefix, and size mismatches all fail
// without reading or writing out of bounds (the frame-fuzz suite drives
// mutated blocks through it).

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "support/status.hpp"

namespace asyncml::transport {

/// Worst-case compressed size for `n` input bytes (all-literal encoding).
[[nodiscard]] constexpr std::size_t lz4_compress_bound(std::size_t n) {
  return n + n / 255 + 16;
}

/// Compresses `src` into a fresh LZ4 block. Never fails: incompressible
/// input degrades to a literal run slightly larger than the input.
[[nodiscard]] std::vector<std::uint8_t> lz4_compress(std::span<const std::uint8_t> src);

/// Decompresses a block into exactly `dst.size()` bytes (the caller knows
/// the raw length from the frame header). Non-OK — with nothing written out
/// of bounds — on any malformed input.
[[nodiscard]] support::Status lz4_decompress(std::span<const std::uint8_t> src,
                                             std::span<std::uint8_t> dst);

}  // namespace asyncml::transport
