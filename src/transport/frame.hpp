#pragma once

// Length-prefixed frame layer of the transport plane (docs/TRANSPORT.md).
//
// Every message on a transport channel travels as one frame:
//
//   offset  size  field
//        0     4  magic "AMF1"
//        4     1  type      (low 7 bits = FrameKind, bit 7 = ack)
//        5     1  flags     (bit 0 = body is lz4 block-compressed)
//        6     2  reserved  (must be zero)
//        8     4  body_len  (u32 LE, bytes following the header)
//       12     4  raw_len   (u32 LE, uncompressed body length)
//       16     4  crc32     (u32 LE, IEEE crc of the body as on the wire)
//       20     …  body      (msgpack message, possibly lz4-compressed)
//
// The decoder is incremental — it accepts arbitrary split/coalesced reads —
// and validates the complete header *before* allocating body storage, so a
// lying length field can never drive an allocation past max_frame_bytes.
// Any malformed input poisons the decoder (a byte stream is unrecoverable
// once framing is lost) and every entry point returns Status, never throws.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "support/status.hpp"

namespace asyncml::transport {

/// Message kinds carried over a channel. Acks echo the request kind with
/// kAckBit set.
enum class FrameKind : std::uint8_t {
  kHello = 1,       ///< connection handshake (wire::HelloMsg)
  kTaskSpec = 2,    ///< dispatch-plane task header (wire::TaskSpecMsg)
  kTaskResult = 3,  ///< result-plane task result (wire::TaskResultMsg)
  kModelBase = 4,   ///< model-plane payload envelope: full base snapshot
  kModelDelta = 5,  ///< model-plane payload envelope: sparse delta (lz4)
  kOpaque = 6,      ///< model-plane payload envelope: unregistered type
  kShutdown = 7,    ///< control: endpoint exits after acking
  kError = 8,       ///< control: decode failure report (wire::ErrorMsg)
};

inline constexpr std::uint8_t kAckBit = 0x80;
inline constexpr std::uint8_t kFlagLz4 = 0x01;
inline constexpr std::size_t kFrameHeaderBytes = 20;
inline constexpr std::size_t kDefaultMaxFrameBytes = 64ull << 20;

[[nodiscard]] constexpr std::uint8_t ack_type(FrameKind kind) {
  return static_cast<std::uint8_t>(kind) | kAckBit;
}

/// IEEE CRC-32 (reflected, poly 0xEDB88320) of `data`.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data);

struct Frame {
  std::uint8_t type = 0;
  std::uint8_t flags = 0;
  std::uint32_t raw_len = 0;  ///< uncompressed body length
  std::vector<std::uint8_t> body;  ///< as on the wire (compressed if kFlagLz4)

  [[nodiscard]] FrameKind kind() const {
    return static_cast<FrameKind>(type & ~kAckBit);
  }
  [[nodiscard]] bool is_ack() const { return (type & kAckBit) != 0; }
  [[nodiscard]] bool compressed() const { return (flags & kFlagLz4) != 0; }

  /// The uncompressed message bytes: the body itself, or its lz4 decode when
  /// kFlagLz4 is set. Non-OK on a malformed compressed block.
  [[nodiscard]] support::StatusOr<std::vector<std::uint8_t>> message_bytes() const;
};

/// Encodes one frame. `raw_len` is the uncompressed body length (equal to
/// body.size() unless `flags` carries kFlagLz4).
[[nodiscard]] std::vector<std::uint8_t> encode_frame(std::uint8_t type,
                                                     std::uint8_t flags,
                                                     std::span<const std::uint8_t> body,
                                                     std::uint32_t raw_len);

/// Uncompressed convenience overload.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(std::uint8_t type,
                                                     std::span<const std::uint8_t> body);

/// Lz4-compresses `body` and emits the frame with kFlagLz4 — unless the
/// compressed form is not smaller, in which case the frame ships raw (the
/// flag tells the decoder which happened).
[[nodiscard]] std::vector<std::uint8_t> encode_frame_lz4(std::uint8_t type,
                                                         std::span<const std::uint8_t> body);

/// Incremental frame decoder. feed() buffers arbitrary chunks and appends
/// every completed frame to `out`; a malformed stream returns non-OK and
/// poisons the decoder permanently.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_(max_frame_bytes) {}

  support::Status feed(std::span<const std::uint8_t> data, std::vector<Frame>& out);

  /// True while a partially received frame (header or body) is pending —
  /// a peer disconnect in this state tore a frame mid-flight.
  [[nodiscard]] bool mid_frame() const { return !buf_.empty(); }
  [[nodiscard]] std::size_t buffered_bytes() const { return buf_.size(); }
  [[nodiscard]] bool poisoned() const { return poisoned_; }

 private:
  support::Status poison(std::string message);

  std::size_t max_frame_;
  std::vector<std::uint8_t> buf_;
  bool poisoned_ = false;
};

}  // namespace asyncml::transport
