#pragma once

// The pluggable Transport seam (docs/TRANSPORT.md).
//
// A Transport owns one Channel per worker. Every driver↔worker exchange —
// task dispatch headers, task results, broadcast/model payload fetches, and
// control traffic — goes through the worker's Channel as a request/ack round
// trip:
//
//   kInProcess   The deterministic reference. Nothing is serialized; the
//                channel returns the modeled NetworkModel charge for the
//                caller to sleep, exactly reproducing the pre-seam engine.
//   kUnixSocket  The worker's *wire plane* runs as a separate process
//   kTcp         (tools/asyncml_worker) connected over AF_UNIX / loopback
//                TCP. Every message is genuinely framed (msgpack + lz4 on
//                the delta chain), decoded, validated and re-encoded by the
//                remote endpoint, and the bytes the driver consumes are the
//                *decoded* echo — so a codec bug changes trajectories and
//                the conformance suite catches it. Task compute itself stays
//                in-library (closures cannot cross a process boundary);
//                remote execution is the roadmap follow-up.
//
// Failure semantics are fail-stop and uniform across backends: a dead peer
// (SIGKILL, disconnect, I/O deadline) marks the channel dead, the owning
// Worker converts in-flight work to synthesized kUnavailable results, and
// the elastic-membership machinery (docs/FAULTS.md) takes over — identical
// to a kCrashWorker fault.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "engine/metrics.hpp"
#include "engine/network.hpp"
#include "engine/payload.hpp"
#include "engine/task.hpp"
#include "engine/types.hpp"
#include "support/status.hpp"

namespace asyncml::transport {

enum class Backend : std::uint8_t {
  kInProcess = 0,
  kUnixSocket = 1,
  kTcp = 2,
};

[[nodiscard]] const char* backend_name(Backend backend) noexcept;

struct TransportConfig {
  Backend backend = Backend::kInProcess;
  /// Frame decoders reject any frame whose declared body or raw length
  /// exceeds this, before allocating.
  std::size_t max_frame_bytes = 64ull << 20;
  /// Deadline for one blocking I/O step of a round trip (connect, write,
  /// read). Socket waits are poll()-bounded — there are no raw sleeps.
  double io_deadline_ms = 10000.0;
  /// Lz4-compress model-delta frames (the delta chain); other channels ship
  /// raw. Bit-exactness does not depend on this knob.
  bool compress_deltas = true;
  /// Worker launcher binary for the socket backends. Empty resolves
  /// $ASYNCML_WORKER_BIN, then `asyncml_worker` next to the running binary.
  std::string worker_binary;
};

/// What a result ship handed back: the (decoded) result plus the timing the
/// caller still owes the cost model. The in-process backend performs no I/O
/// and returns the modeled transfer as `charge_ms` (the worker sleeps it,
/// exactly like the pre-seam code); socket backends already spent real wall
/// time on the wire and report it as `wire_ns` with `charge_ms == 0`.
struct ShipReceipt {
  engine::TaskResult result;
  double charge_ms = 0.0;
  std::uint64_t wire_ns = 0;
};

/// Same contract for a model-plane payload fetch.
struct FetchReceipt {
  engine::Payload payload;
  double charge_ms = 0.0;
};

/// One worker's wire. Thread-safe: a worker's executor threads (results,
/// fetches) and the driver (task dispatch) may call concurrently; socket
/// round trips serialize on an internal mutex.
class Channel {
 public:
  virtual ~Channel() = default;

  /// Round-trips the spec's wire header. On the socket backends the decoded
  /// echo overwrites the spec's wire-visible fields (fn stays local); the
  /// in-process backend leaves the spec untouched. Non-OK means the peer is
  /// unreachable — the caller still delivers the spec so it bounces through
  /// the worker's fail-stop path.
  [[nodiscard]] virtual support::Status ship_task(engine::TaskSpec& spec) = 0;

  /// Round-trips a task result. The returned result is what the driver must
  /// consume (the decoded echo on socket backends). Non-OK means the result
  /// never left the machine: the worker synthesizes kUnavailable.
  [[nodiscard]] virtual support::StatusOr<ShipReceipt> ship_result(
      engine::TaskResult result) = 0;

  /// Round-trips a broadcast/model payload (delta frames lz4-compressed).
  /// The returned payload carries the original modeled bytes() so charged
  /// accounting is backend-invariant.
  [[nodiscard]] virtual support::StatusOr<FetchReceipt> fetch_payload(
      const engine::Payload& payload, engine::BroadcastClass cls) = 0;

  /// False once the peer is known dead (fail-stop; never flips back).
  [[nodiscard]] virtual bool alive() const = 0;

  /// True when ships do real I/O (socket backends): the caller measures wall
  /// time instead of sleeping a modeled charge.
  [[nodiscard]] virtual bool is_wire() const = 0;

  [[nodiscard]] virtual engine::WorkerId worker() const = 0;
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Brings every channel up (spawns and handshakes worker processes on the
  /// socket backends). Must be called once before channel().
  [[nodiscard]] virtual support::Status start() = 0;

  /// Sends shutdown frames, closes channels, reaps worker processes.
  /// Idempotent.
  virtual void stop() = 0;

  [[nodiscard]] virtual Channel& channel(engine::WorkerId worker) = 0;
  [[nodiscard]] virtual Backend backend() const = 0;

  /// Chaos hook: hard-kills worker `w`'s peer. SIGKILL on the socket
  /// backends (the wire discovers the death on the next I/O); an immediate
  /// dead-mark in-process.
  virtual void kill_worker(engine::WorkerId worker) = 0;
};

/// Builds the configured backend. `network` and `metrics` may outlive the
/// transport and must stay valid while it runs; `network` drives the
/// in-process modeled charges, `metrics` receives the per-channel wire
/// counters (either may be null in tests).
[[nodiscard]] std::unique_ptr<Transport> make_transport(
    const TransportConfig& config, int num_workers,
    const engine::NetworkModel* network, engine::ClusterMetrics* metrics);

}  // namespace asyncml::transport
