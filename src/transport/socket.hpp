#pragma once

// POSIX socket machinery for the Unix-socket and TCP transport backends:
// RAII fds, poll()-bounded blocking I/O (every wait carries a deadline — no
// raw sleeps anywhere on the socket path), listener/connector helpers, and
// the socket Transport factory. The worker side of the wire lives in
// transport/endpoint.hpp and runs inside tools/asyncml_worker.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "support/status.hpp"
#include "transport/transport.hpp"

namespace asyncml::transport {

/// Move-only owning file descriptor.
class ScopedFd {
 public:
  ScopedFd() = default;
  explicit ScopedFd(int fd) : fd_(fd) {}
  ~ScopedFd() { reset(); }

  ScopedFd(ScopedFd&& other) noexcept : fd_(other.release()) {}
  ScopedFd& operator=(ScopedFd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }
  ScopedFd(const ScopedFd&) = delete;
  ScopedFd& operator=(const ScopedFd&) = delete;

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }

  [[nodiscard]] int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

  void reset(int fd = -1) noexcept;

 private:
  int fd_ = -1;
};

/// Writes all of `data`, polling for writability with `deadline_ms` as the
/// budget for the whole call. kUnavailable on peer loss or deadline.
[[nodiscard]] support::Status write_all(int fd, std::span<const std::uint8_t> data,
                                        double deadline_ms);

/// Reads 1..buf.size() bytes. A negative `deadline_ms` blocks until the peer
/// sends or disconnects; EOF and deadline both come back kUnavailable.
[[nodiscard]] support::StatusOr<std::size_t> read_some(int fd,
                                                       std::span<std::uint8_t> buf,
                                                       double deadline_ms);

/// Binds and listens on an AF_UNIX stream socket at `path`.
[[nodiscard]] support::StatusOr<ScopedFd> listen_unix(const std::string& path);

/// Binds 127.0.0.1 on a kernel-chosen ephemeral port, listens, and reports
/// the chosen port.
[[nodiscard]] support::StatusOr<ScopedFd> listen_tcp_ephemeral(std::uint16_t& port_out);

/// Accepts one connection within `deadline_ms`.
[[nodiscard]] support::StatusOr<ScopedFd> accept_deadline(int listen_fd,
                                                          double deadline_ms);

/// Connects to an AF_UNIX stream socket, retrying inside the deadline while
/// the listener is not up yet.
[[nodiscard]] support::StatusOr<ScopedFd> connect_unix(const std::string& path,
                                                       double deadline_ms);

/// Connects to host:port (TCP, TCP_NODELAY set), retrying inside the deadline.
[[nodiscard]] support::StatusOr<ScopedFd> connect_tcp(const std::string& host,
                                                      std::uint16_t port,
                                                      double deadline_ms);

/// Builds the Unix-socket or TCP backend: spawns one tools/asyncml_worker
/// process per worker and handshakes each connection. `config.backend` must
/// not be kInProcess.
[[nodiscard]] std::unique_ptr<Transport> make_socket_transport(
    const TransportConfig& config, int num_workers, engine::ClusterMetrics* metrics);

}  // namespace asyncml::transport
