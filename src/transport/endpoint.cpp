#include "transport/endpoint.hpp"

#include <array>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "transport/frame.hpp"
#include "transport/socket.hpp"
#include "transport/wire.hpp"

namespace asyncml::transport {

using support::Status;
using support::StatusCode;
using support::StatusOr;

namespace {

void log_endpoint(std::int32_t worker, const std::string& what) {
  std::fprintf(stderr, "asyncml_worker[%d]: %s\n", worker, what.c_str());
}

/// Acks `frame` with the canonical re-encoding of its decoded body. A body
/// that fails to decode earns a kError ack instead — framing stayed aligned,
/// so the stream survives and the driver sees the decode verdict as a
/// Status.
Status serve_frame(int fd, const Frame& frame, const EndpointOptions& opts) {
  StatusOr<std::vector<std::uint8_t>> reencoded = [&]() -> StatusOr<std::vector<std::uint8_t>> {
    StatusOr<std::vector<std::uint8_t>> message = frame.message_bytes();
    if (!message.is_ok()) return message.status();
    return reencode_message(frame.kind(), message.value());
  }();

  std::vector<std::uint8_t> ack;
  if (reencoded.is_ok()) {
    const std::uint8_t type = ack_type(frame.kind());
    // Mirror the request's compression so both directions of the lz4 path
    // get exercised.
    ack = frame.compressed() ? encode_frame_lz4(type, reencoded.value())
                             : encode_frame(type, reencoded.value());
  } else {
    ErrorMsg err;
    err.code = static_cast<std::uint32_t>(reencoded.status().code());
    err.message = reencoded.status().message();
    ack = encode_frame(ack_type(FrameKind::kError), encode_error(err));
  }
  return write_all(fd, ack, opts.hello_deadline_ms);
}

/// Sends the hello and validates the driver's ack. The driver may pipeline
/// its first request right behind the ack, so a coalesced read can deliver
/// more than one frame here: only the first is the ack, and any frames
/// behind it are left in `pending` for the serve loop.
Status send_hello(int fd, const EndpointOptions& opts, FrameDecoder& decoder,
                  std::vector<Frame>& pending) {
  HelloMsg msg;
  msg.worker = opts.worker;
  const std::vector<std::uint8_t> hello =
      encode_frame(static_cast<std::uint8_t>(FrameKind::kHello), encode_hello(msg));
  if (Status s = write_all(fd, hello, opts.hello_deadline_ms); !s.is_ok()) return s;

  std::array<std::uint8_t, 4096> buf;
  while (pending.empty()) {
    StatusOr<std::size_t> n = read_some(fd, buf, opts.hello_deadline_ms);
    if (!n.is_ok()) return n.status();
    if (Status s = decoder.feed({buf.data(), n.value()}, pending); !s.is_ok()) return s;
  }
  const Frame ack = std::move(pending.front());
  pending.erase(pending.begin());
  if (!ack.is_ack() || ack.kind() != FrameKind::kHello) {
    return Status(StatusCode::kUnavailable, "handshake: expected a kHello ack");
  }
  StatusOr<std::vector<std::uint8_t>> body = ack.message_bytes();
  if (!body.is_ok()) return body.status();
  HelloMsg echo;
  if (Status s = decode_hello(body.value(), echo); !s.is_ok()) return s;
  if (echo.protocol != kProtocolVersion || echo.worker != opts.worker) {
    return Status(StatusCode::kFailedPrecondition, "handshake: driver hello mismatch");
  }
  return Status::ok();
}

}  // namespace

int run_worker_endpoint(int fd, const EndpointOptions& opts) {
  FrameDecoder decoder(opts.max_frame_bytes);
  std::vector<Frame> frames;  // may already hold pipelined post-hello requests
  if (Status s = send_hello(fd, opts, decoder, frames); !s.is_ok()) {
    log_endpoint(opts.worker, "handshake failed: " + s.to_string());
    return 1;
  }

  std::array<std::uint8_t, 65536> buf;
  for (;;) {
    for (Frame& frame : frames) {
      if (frame.is_ack()) {
        log_endpoint(opts.worker, "protocol violation: ack frame from driver");
        return 1;
      }
      if (frame.kind() == FrameKind::kShutdown) {
        const std::vector<std::uint8_t> ack =
            encode_frame(ack_type(FrameKind::kShutdown), {});
        (void)write_all(fd, ack, opts.hello_deadline_ms);
        return 0;
      }
      if (Status s = serve_frame(fd, frame, opts); !s.is_ok()) {
        log_endpoint(opts.worker, "ack write failed: " + s.to_string());
        return 1;
      }
    }
    frames.clear();
    // Block without a deadline: requests arrive at the driver's cadence and
    // a closed driver shows up as EOF.
    StatusOr<std::size_t> n = read_some(fd, buf, /*deadline_ms=*/-1.0);
    if (!n.is_ok()) {
      // Driver went away. Mid-frame EOF is a torn frame — either way there
      // is nobody left to serve.
      return 0;
    }
    if (Status s = decoder.feed({buf.data(), n.value()}, frames); !s.is_ok()) {
      // Framing is lost for good; report and die so the driver's next I/O
      // fails fast.
      log_endpoint(opts.worker, "stream poisoned: " + s.to_string());
      return 1;
    }
  }
}

}  // namespace asyncml::transport
