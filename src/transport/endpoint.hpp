#pragma once

// Worker-side wire endpoint: the loop tools/asyncml_worker runs after
// connecting back to the driver. It speaks first (kHello naming its worker
// id), then serves request/ack round trips: each incoming frame is decoded,
// validated, and canonically *re-encoded* before the ack goes back — the
// codec-oracle step that makes a serialization bug corrupt trajectories
// instead of hiding (the driver consumes the decoded echo, and the
// conformance suite compares backends bit-for-bit).

#include <cstddef>
#include <cstdint>

#include "support/status.hpp"

namespace asyncml::transport {

struct EndpointOptions {
  std::int32_t worker = -1;
  std::size_t max_frame_bytes = 64ull << 20;
  /// Handshake deadline; the serve loop itself blocks without one (requests
  /// arrive at the driver's cadence) and exits on EOF.
  double hello_deadline_ms = 10000.0;
};

/// Runs the endpoint on an already-connected socket until a kShutdown frame
/// (clean exit) or peer EOF. Returns a process exit code: 0 on clean
/// shutdown or driver EOF, 1 on an unrecoverable stream error (framing
/// poison, handshake failure, write failure).
[[nodiscard]] int run_worker_endpoint(int fd, const EndpointOptions& opts);

}  // namespace asyncml::transport
