#pragma once

// Minimal msgpack codec for the transport's typed wire messages.
//
// Implements exactly the subset the wire schema uses — nil, bool, unsigned
// and signed integers, float64, str, bin, and arrays — with spec-conformant
// big-endian multi-byte encodings, so the frames are real msgpack (an
// external decoder would read them). The reader is strict: every accessor
// bounds-checks before touching the buffer and returns Status on a type
// mismatch or truncation; nothing throws and no read can allocate more than
// the remaining buffer length (bin/str spans point into the caller's
// buffer).

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "support/status.hpp"

namespace asyncml::transport {

class MsgWriter {
 public:
  void write_nil() { out_.push_back(0xC0); }
  void write_bool(bool v) { out_.push_back(v ? 0xC3 : 0xC2); }
  void write_uint(std::uint64_t v);
  void write_int(std::int64_t v);
  void write_double(double v);
  void write_str(std::string_view s);
  void write_bin(std::span<const std::uint8_t> data);
  void begin_array(std::size_t n);

  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(out_); }
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return out_; }

 private:
  std::vector<std::uint8_t> out_;
};

class MsgReader {
 public:
  explicit MsgReader(std::span<const std::uint8_t> data)
      : p_(data.data()), end_(data.data() + data.size()) {}

  [[nodiscard]] support::Status read_nil();
  [[nodiscard]] support::Status read_bool(bool& out);
  [[nodiscard]] support::Status read_uint(std::uint64_t& out);
  [[nodiscard]] support::Status read_int(std::int64_t& out);
  [[nodiscard]] support::Status read_double(double& out);
  [[nodiscard]] support::Status read_str(std::string& out);
  /// Zero-copy: `out` points into the reader's buffer, valid only while the
  /// buffer lives.
  [[nodiscard]] support::Status read_bin(std::span<const std::uint8_t>& out);
  [[nodiscard]] support::Status read_array(std::size_t& count);

  [[nodiscard]] bool at_end() const { return p_ == end_; }
  [[nodiscard]] std::size_t remaining() const {
    return static_cast<std::size_t>(end_ - p_);
  }

 private:
  [[nodiscard]] support::Status need(std::size_t n) const;
  [[nodiscard]] std::uint64_t take_be(std::size_t n);

  const std::uint8_t* p_;
  const std::uint8_t* end_;
};

}  // namespace asyncml::transport
