#pragma once

// Cache-line padding utilities.
//
// Counters updated by different threads must not share a cache line, or the
// coherence traffic dominates (false sharing).  `Padded<T>` aligns and pads a
// value to the destructive-interference size.

#include <atomic>
#include <cstddef>
#include <new>

namespace asyncml::support {

// Fixed 64 rather than std::hardware_destructive_interference_size: the
// latter varies with -mtune and would make the struct layout part of an
// unstable ABI (GCC warns about exactly this).
inline constexpr std::size_t kCacheLine = 64;

template <typename T>
struct alignas(kCacheLine) Padded {
  T value;

  template <typename... Args>
  explicit Padded(Args&&... args) : value(static_cast<Args&&>(args)...) {}

  // Pad the tail so arrays of Padded<T> occupy distinct lines.
  char pad_[kCacheLine > sizeof(T) ? kCacheLine - sizeof(T) % kCacheLine : 1]{};
};

/// Relaxed monotonically increasing counter for statistics (bytes shipped,
/// tasks run). Relaxed ordering is sufficient: readers only need eventual
/// totals after join points.
class RelaxedCounter {
 public:
  void add(std::uint64_t delta) noexcept {
    value_.value.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t load() const noexcept {
    return value_.value.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.value.store(0, std::memory_order_relaxed); }

 private:
  Padded<std::atomic<std::uint64_t>> value_{0};
};

}  // namespace asyncml::support
