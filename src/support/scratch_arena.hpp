#pragma once

// Per-executor-thread scratch arena: reusable buffers for the fused batch
// gradient kernels.
//
// Every gradient task needs short-lived working storage — selected row ids,
// margins, derivative coefficients, and (for dense-mode gradients) a
// dim-sized accumulator.  Allocating these per task puts malloc/free on the
// hot path of every executor thread; the arena instead pools buffers
// per thread (`ScratchArena::local()` is thread_local) and hands them out as
// RAII leases that return the storage on destruction.
//
// Lifetime rules (see docs/ARCHITECTURE.md, "Batch kernels & scratch"):
//   * a lease must be released on the thread that took it (guaranteed when
//     leases live on the stack of a task body — tasks never migrate threads
//     mid-run);
//   * a lease must not outlive the task that took it: arena storage is
//     reused by the next task on the same executor thread, so escaping
//     spans would alias a later task's scratch.  Anything that outlives the
//     task (the result payload) must be copied out (GradVector::assign_dense
//     is the modeled serialize step).
//
// The arena is intentionally type-narrow (double / uint32 pools): the point
// is reuse of the two hot buffer shapes, not a general allocator.

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "support/aligned.hpp"

namespace asyncml::support {

class ScratchArena {
 public:
  /// RAII lease over one pooled buffer; returns it to the pool on
  /// destruction. Move-only.
  template <typename T>
  class Lease {
   public:
    Lease(ScratchArena* arena, AlignedVector<T> buf)
        : arena_(arena), buf_(std::move(buf)) {}
    ~Lease() {
      if (arena_ != nullptr) arena_->release(std::move(buf_));
    }
    Lease(Lease&& other) noexcept
        : arena_(std::exchange(other.arena_, nullptr)), buf_(std::move(other.buf_)) {}
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    [[nodiscard]] AlignedVector<T>& vec() noexcept { return buf_; }
    [[nodiscard]] std::span<T> span() noexcept { return {buf_.data(), buf_.size()}; }
    [[nodiscard]] std::span<const T> span() const noexcept {
      return {buf_.data(), buf_.size()};
    }

   private:
    ScratchArena* arena_;
    AlignedVector<T> buf_;
  };

  /// The calling thread's arena. Executor threads, the driver, and test
  /// threads each get their own instance — no cross-thread sharing, no locks.
  [[nodiscard]] static ScratchArena& local() {
    thread_local ScratchArena arena;
    return arena;
  }

  /// `n` doubles with unspecified contents (callers overwrite fully).
  [[nodiscard]] Lease<double> doubles(std::size_t n) {
    AlignedVector<double> buf = take(double_pool_);
    buf.resize(n);
    return {this, std::move(buf)};
  }

  /// `n` doubles, all zero (the dense gradient accumulator shape).
  [[nodiscard]] Lease<double> zeroed_doubles(std::size_t n) {
    AlignedVector<double> buf = take(double_pool_);
    buf.assign(n, 0.0);
    return {this, std::move(buf)};
  }

  /// Empty index buffer with capacity for `expected` pushes.
  [[nodiscard]] Lease<std::uint32_t> indices(std::size_t expected) {
    AlignedVector<std::uint32_t> buf = take(index_pool_);
    buf.clear();
    buf.reserve(expected);
    return {this, std::move(buf)};
  }

  struct Stats {
    std::uint64_t leases = 0;     ///< total buffers handed out
    std::uint64_t pool_hits = 0;  ///< leases served from the pool (no malloc)
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  template <typename T>
  AlignedVector<T> take(std::vector<AlignedVector<T>>& pool) {
    ++stats_.leases;
    if (pool.empty()) return {};
    ++stats_.pool_hits;
    AlignedVector<T> buf = std::move(pool.back());
    pool.pop_back();
    return buf;
  }

  void release(AlignedVector<double> buf) { double_pool_.push_back(std::move(buf)); }
  void release(AlignedVector<std::uint32_t> buf) {
    index_pool_.push_back(std::move(buf));
  }

  std::vector<AlignedVector<double>> double_pool_;
  std::vector<AlignedVector<std::uint32_t>> index_pool_;
  Stats stats_;
};

}  // namespace asyncml::support
