#include "support/thread_util.hpp"

#include <thread>

#if defined(__linux__)
#include <pthread.h>
#endif

namespace asyncml::support {

void set_current_thread_name(const std::string& name) {
#if defined(__linux__)
  // Linux limits thread names to 15 chars + NUL.
  std::string truncated = name.substr(0, 15);
  pthread_setname_np(pthread_self(), truncated.c_str());
#else
  (void)name;
#endif
}

void precise_sleep(std::chrono::nanoseconds duration) {
  using namespace std::chrono;
  if (duration <= nanoseconds::zero()) return;
  const auto deadline = steady_clock::now() + duration;
  // Leave the final stretch for spinning. The window is a compromise: larger
  // windows absorb more timer slack but burn CPU in every concurrently
  // sleeping worker thread — with dozens of emulated workers on a small
  // machine, that contention distorts the very timings we emulate.
  constexpr auto kSpinWindow = microseconds(60);
  if (duration > kSpinWindow) {
    std::this_thread::sleep_for(duration - kSpinWindow);
  }
  while (steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
}

}  // namespace asyncml::support
