#include "support/sha256.hpp"

#include <cstring>

namespace asyncml::support {

namespace {

// FIPS 180-4 §4.2.2: the first 32 bits of the fractional parts of the cube
// roots of the first 64 primes.
constexpr std::uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

constexpr std::uint32_t rotr(std::uint32_t x, int n) {
  return (x >> n) | (x << (32 - n));
}

}  // namespace

void Sha256::reset() {
  // §5.3.3 initial hash value: fractional parts of the square roots of the
  // first 8 primes.
  state_ = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
            0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
  total_bytes_ = 0;
  buffered_ = 0;
}

void Sha256::compress(const std::uint8_t* block) {
  std::uint32_t w[64];
  for (int t = 0; t < 16; ++t) {
    w[t] = static_cast<std::uint32_t>(block[4 * t]) << 24 |
           static_cast<std::uint32_t>(block[4 * t + 1]) << 16 |
           static_cast<std::uint32_t>(block[4 * t + 2]) << 8 |
           static_cast<std::uint32_t>(block[4 * t + 3]);
  }
  for (int t = 16; t < 64; ++t) {
    const std::uint32_t s0 =
        rotr(w[t - 15], 7) ^ rotr(w[t - 15], 18) ^ (w[t - 15] >> 3);
    const std::uint32_t s1 =
        rotr(w[t - 2], 17) ^ rotr(w[t - 2], 19) ^ (w[t - 2] >> 10);
    w[t] = w[t - 16] + s0 + w[t - 7] + s1;
  }

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  std::uint32_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];
  for (int t = 0; t < 64; ++t) {
    const std::uint32_t sum1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t temp1 = h + sum1 + ch + kK[t] + w[t];
    const std::uint32_t sum0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t temp2 = sum0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + temp1;
    d = c;
    c = b;
    b = a;
    a = temp1 + temp2;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

void Sha256::update(std::span<const std::uint8_t> data) {
  total_bytes_ += data.size();
  std::size_t offset = 0;
  if (buffered_ > 0) {
    const std::size_t take = std::min(data.size(), buffer_.size() - buffered_);
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    offset = take;
    if (buffered_ == buffer_.size()) {
      compress(buffer_.data());
      buffered_ = 0;
    }
  }
  while (offset + 64 <= data.size()) {
    compress(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffered_ = data.size() - offset;
  }
}

Sha256Digest Sha256::finalize() {
  // §5.1.1 padding: 0x80, zeros, then the bit length as a big-endian u64.
  const std::uint64_t bit_len = total_bytes_ * 8;
  const std::uint8_t pad_byte = 0x80;
  update({&pad_byte, 1});
  const std::uint8_t zero = 0x00;
  while (buffered_ != 56) update({&zero, 1});
  std::uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
  update({len_bytes, 8});

  Sha256Digest digest;
  for (int i = 0; i < 8; ++i) {
    digest[4 * i] = static_cast<std::uint8_t>(state_[i] >> 24);
    digest[4 * i + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    digest[4 * i + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    digest[4 * i + 3] = static_cast<std::uint8_t>(state_[i]);
  }
  return digest;
}

Sha256Digest sha256(std::span<const std::uint8_t> data) {
  Sha256 hash;
  hash.update(data);
  return hash.finalize();
}

std::string sha256_hex(const Sha256Digest& digest) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(64);
  for (const std::uint8_t b : digest) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xF]);
  }
  return out;
}

std::optional<Sha256Digest> sha256_from_hex(const std::string& hex) {
  if (hex.size() != 64) return std::nullopt;
  const auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  Sha256Digest digest;
  for (std::size_t i = 0; i < 32; ++i) {
    const int hi = nibble(hex[2 * i]);
    const int lo = nibble(hex[2 * i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    digest[i] = static_cast<std::uint8_t>(hi << 4 | lo);
  }
  return digest;
}

}  // namespace asyncml::support
