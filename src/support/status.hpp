#pragma once

// Status / StatusOr: error propagation across thread boundaries.
//
// Exceptions must not unwind across the worker/driver boundary (the thread
// would terminate), so task execution returns Status-carrying results and the
// driver decides whether to retry (Spark task-retry semantics) or surface the
// error.  A deliberately small subset of absl::Status.

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace asyncml::support {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kCancelled,
  kInternal,
  kUnavailable,
  /// Unrecoverable corruption: stored bytes fail their integrity check
  /// (CRC/hash mismatch, truncated blob). Unlike kUnavailable this is not
  /// transient — retrying the same read returns the same corrupt bytes; the
  /// disk tier quarantines the object and falls back to an intact ancestor.
  kDataLoss,
};

[[nodiscard]] const char* status_code_name(StatusCode code) noexcept;

class Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status ok() { return Status(); }

  [[nodiscard]] bool is_ok() const noexcept { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  [[nodiscard]] std::string to_string() const {
    return is_ok() ? "OK" : std::string(status_code_name(code_)) + ": " + message_;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : rep_(std::move(value)) {}                    // NOLINT
  StatusOr(Status status) : rep_(std::move(status)) {              // NOLINT
    assert(!std::get<Status>(rep_).is_ok() && "StatusOr must not hold OK status");
  }

  [[nodiscard]] bool is_ok() const { return std::holds_alternative<T>(rep_); }

  [[nodiscard]] const T& value() const& {
    assert(is_ok());
    return std::get<T>(rep_);
  }
  [[nodiscard]] T& value() & {
    assert(is_ok());
    return std::get<T>(rep_);
  }
  [[nodiscard]] T&& value() && {
    assert(is_ok());
    return std::get<T>(std::move(rep_));
  }

  [[nodiscard]] Status status() const {
    return is_ok() ? Status::ok() : std::get<Status>(rep_);
  }

 private:
  std::variant<T, Status> rep_;
};

}  // namespace asyncml::support
