#pragma once

// Cache-line-aligned vector storage for the numeric containers.
//
// The AVX2 batch kernels issue 32-byte loads over matrix rows and model
// vectors; std::allocator only guarantees 16-byte alignment, so every other
// vector load straddles a cache line (measured ~1.45x slower gemv on the
// bench hosts).  DenseMatrix / DenseVector / GradVector back their storage
// with this allocator so row starts (row strides are whole cache lines for
// power-of-two-friendly dims, and the base always) sit on 64-byte
// boundaries.  Value semantics are untouched — alignment never changes
// results, only load costs.

#include <cstddef>
#include <new>
#include <vector>

namespace asyncml::support {

template <typename T, std::size_t Alignment = 64>
class AlignedAllocator {
 public:
  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  explicit AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Alignment));
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U, Alignment>&) const noexcept {
    return true;
  }
};

/// std::vector with 64-byte-aligned storage.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace asyncml::support
