#pragma once

// Thread naming and calibrated short sleeps.
//
// Service-time emulation needs sleeps that are accurate at the sub-millisecond
// scale.  `precise_sleep` sleeps the bulk of the interval with sleep_for and
// spins the final stretch, bounding overshoot to scheduler noise.

#include <chrono>
#include <string>

namespace asyncml::support {

/// Names the calling thread (visible in debuggers/profilers). Best effort.
void set_current_thread_name(const std::string& name);

/// Sleeps for `duration` with reduced overshoot: coarse sleep until ~200us
/// before the deadline, then spin-wait. Durations <= 0 return immediately.
void precise_sleep(std::chrono::nanoseconds duration);

/// Convenience overload in fractional milliseconds.
inline void precise_sleep_ms(double ms) {
  if (ms <= 0.0) return;
  precise_sleep(std::chrono::nanoseconds(static_cast<long long>(ms * 1e6)));
}

}  // namespace asyncml::support
