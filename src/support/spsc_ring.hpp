#pragma once

// Wait-free single-producer/single-consumer ring buffer.
//
// Used on hot paths where a worker thread publishes fixed-size records (e.g.
// per-task timing samples) to a collector without taking a lock.  Classic
// Lamport queue with acquire/release fences and cache-line-separated indices
// to avoid false sharing (see support/padded.hpp).

#include <atomic>
#include <cstddef>
#include <optional>
#include <vector>

#include "support/padded.hpp"

namespace asyncml::support {

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two; one slot is sacrificed to
  /// distinguish full from empty.
  explicit SpscRing(std::size_t capacity_hint = 1024) {
    std::size_t cap = 2;
    while (cap < capacity_hint + 1) cap <<= 1;
    buffer_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. Returns false when the ring is full (record dropped —
  /// metrics tolerate loss; correctness data never travels through rings).
  bool try_push(const T& item) {
    const std::size_t head = head_.value.load(std::memory_order_relaxed);
    const std::size_t next = (head + 1) & mask_;
    if (next == tail_.value.load(std::memory_order_acquire)) return false;
    buffer_[head] = item;
    head_.value.store(next, std::memory_order_release);
    return true;
  }

  /// Consumer side.
  std::optional<T> try_pop() {
    const std::size_t tail = tail_.value.load(std::memory_order_relaxed);
    if (tail == head_.value.load(std::memory_order_acquire)) return std::nullopt;
    T item = buffer_[tail];
    tail_.value.store((tail + 1) & mask_, std::memory_order_release);
    return item;
  }

  [[nodiscard]] std::size_t capacity() const { return buffer_.size() - 1; }

 private:
  std::vector<T> buffer_;
  std::size_t mask_ = 0;
  Padded<std::atomic<std::size_t>> head_{0};
  Padded<std::atomic<std::size_t>> tail_{0};
};

}  // namespace asyncml::support
