#include "support/crc32.hpp"

#include <array>

namespace asyncml::support {

namespace {

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kCrcTable = make_crc_table();

}  // namespace

std::uint32_t crc32_update(std::uint32_t state, std::span<const std::uint8_t> data) {
  for (const std::uint8_t b : data) {
    state = kCrcTable[(state ^ b) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  return crc32_final(crc32_update(crc32_init(), data));
}

}  // namespace asyncml::support
