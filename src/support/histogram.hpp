#pragma once

// Log-bucketed latency histogram with summary statistics.
//
// Wait-time distributions in the paper's Figures 4/6 and Table 3 are means,
// but long-tail stragglers make percentiles informative, so the harness also
// reports p50/p95/p99/max.  Buckets are base-2 logarithmic over nanoseconds,
// giving <= ~7% relative error per bucket at a fixed 64-bucket footprint.

#include <cstdint>
#include <string>
#include <vector>

namespace asyncml::support {

class Histogram {
 public:
  Histogram();

  void record(double value_ns);

  /// Merge another histogram into this one (per-worker -> global roll-up).
  void merge(const Histogram& other);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double mean_ns() const;
  [[nodiscard]] double max_ns() const { return max_; }
  [[nodiscard]] double min_ns() const { return count_ == 0 ? 0.0 : min_; }

  /// Approximate quantile (q in [0,1]) from bucket interpolation.
  [[nodiscard]] double quantile_ns(double q) const;

  /// Number of recorded values in buckets that lie entirely below
  /// `threshold_ns`. Exact when the threshold is a bucket boundary (a power
  /// of two); otherwise a lower bound, since a bucket straddling the
  /// threshold is excluded wholesale.
  [[nodiscard]] std::uint64_t count_below(double threshold_ns) const;

  /// One-line human-readable summary in milliseconds.
  [[nodiscard]] std::string summary_ms() const;

  /// Serialize to a single-line JSON object (sparse buckets). The bucket
  /// layout (base-2 log over ns, 64 buckets) is stable, so the encoding
  /// round-trips through from_json across runs and processes.
  [[nodiscard]] std::string to_json() const;

  /// Parse the to_json encoding back into a histogram. Unknown keys are
  /// ignored; malformed input yields an empty histogram.
  [[nodiscard]] static Histogram from_json(const std::string& json);

  void reset();

 private:
  static int bucket_for(double value_ns);

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace asyncml::support
