#pragma once

// Closable blocking MPMC queue.
//
// This is the message-passing primitive of the engine: worker mailboxes and
// the driver's result channel are BlockingQueues.  Design points, following
// the Core Guidelines concurrency rules:
//   * all state behind one mutex, condition_variable for blocking pops
//     (CP.42: don't wait without a condition);
//   * close() wakes all waiters and makes further pushes no-ops, so shutdown
//     never deadlocks (a worker blocked in pop() observes closed+empty);
//   * pop results are std::optional so "queue closed" is a value, not an
//     exception crossing a thread boundary.

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace asyncml::support {

template <typename T>
class BlockingQueue {
 public:
  /// `capacity == 0` means unbounded. Bounded queues block pushers when full
  /// (backpressure), which the engine uses to model finite network buffers.
  explicit BlockingQueue(std::size_t capacity = 0) : capacity_(capacity) {}

  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  /// Pushes an item; blocks while a bounded queue is full. Returns false if
  /// the queue is (or becomes) closed — the item is dropped in that case.
  bool push(T item) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock, [&] { return closed_ || !bounded_full_locked(); });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push attempt; returns false when full or closed.
  bool try_push(T item) {
    {
      std::lock_guard lock(mutex_);
      if (closed_ || bounded_full_locked()) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking pop; returns nullopt only when the queue is closed AND drained.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    return pop_front_locked(lock);
  }

  /// Pop with timeout; nullopt on timeout or on closed+drained.
  template <typename Rep, typename Period>
  std::optional<T> pop_for(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock lock(mutex_);
    if (!not_empty_.wait_for(lock, timeout,
                             [&] { return closed_ || !items_.empty(); })) {
      return std::nullopt;
    }
    return pop_front_locked(lock);
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::unique_lock lock(mutex_);
    if (items_.empty()) return std::nullopt;
    return pop_front_locked(lock);
  }

  /// Takes the entire queue contents in one swap under one lock — the batch
  /// consumer's primitive (the coordinator's result loop drains every
  /// delivered TaskResult per wakeup instead of paying one mutex round-trip
  /// each). Returns an empty deque when the queue is empty.
  std::deque<T> drain() {
    std::deque<T> out;
    {
      std::lock_guard lock(mutex_);
      items_.swap(out);
    }
    if (!out.empty()) not_full_.notify_all();
    return out;
  }

  /// Blocking drain with timeout: waits until the queue is non-empty (or
  /// closed / timed out), then swaps everything out. Empty result means
  /// timeout or closed-and-drained.
  template <typename Rep, typename Period>
  std::deque<T> drain_for(std::chrono::duration<Rep, Period> timeout) {
    std::deque<T> out;
    {
      std::unique_lock lock(mutex_);
      if (!not_empty_.wait_for(lock, timeout,
                               [&] { return closed_ || !items_.empty(); })) {
        return out;
      }
      items_.swap(out);
    }
    if (!out.empty()) not_full_.notify_all();
    return out;
  }

  /// Closes the queue: pending items remain poppable, new pushes are refused,
  /// blocked poppers wake up once the queue drains.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

  [[nodiscard]] bool empty() const { return size() == 0; }

 private:
  bool bounded_full_locked() const {
    return capacity_ != 0 && items_.size() >= capacity_;
  }

  std::optional<T> pop_front_locked(std::unique_lock<std::mutex>& lock) {
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace asyncml::support
