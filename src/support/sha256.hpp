#pragma once

// SHA-256 (FIPS 180-4), dependency-free and incremental.
//
// The disk tier (store/disk/) content-addresses every blob by the SHA-256 of
// its payload: the digest IS the filename, so identical payloads dedup to one
// object and a read can prove it got back exactly the bytes that were
// written.  The incremental Sha256 class hashes streams chunk by chunk
// (update/finalize); the free functions cover the one-shot and hex cases.
//
// Tested against the FIPS 180-4 known-answer vectors plus incremental-split
// equivalence in tests/support/sha256_test.cpp.

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>

namespace asyncml::support {

/// A SHA-256 digest. Value type; all-zero is used as "no digest" by callers
/// (the hash of any real payload is never all-zero in practice).
using Sha256Digest = std::array<std::uint8_t, 32>;

class Sha256 {
 public:
  Sha256() { reset(); }

  /// Restarts the hash (a finalized instance can be reused).
  void reset();

  /// Absorbs `data`; chunk boundaries do not affect the digest.
  void update(std::span<const std::uint8_t> data);

  /// Pads, finishes, and returns the digest. The instance must be reset()
  /// before further updates.
  [[nodiscard]] Sha256Digest finalize();

 private:
  void compress(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::uint64_t total_bytes_ = 0;
  std::size_t buffered_ = 0;
};

/// One-shot digest of `data`.
[[nodiscard]] Sha256Digest sha256(std::span<const std::uint8_t> data);

/// Lowercase 64-char hex of a digest (the blob filename).
[[nodiscard]] std::string sha256_hex(const Sha256Digest& digest);

/// Parses a 64-char hex string; nullopt on bad length or non-hex characters.
[[nodiscard]] std::optional<Sha256Digest> sha256_from_hex(const std::string& hex);

/// True when the digest is all-zero (the "no digest" sentinel).
[[nodiscard]] inline bool sha256_is_zero(const Sha256Digest& digest) noexcept {
  for (const std::uint8_t b : digest) {
    if (b != 0) return false;
  }
  return true;
}

}  // namespace asyncml::support
