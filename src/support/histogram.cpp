#include "support/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace asyncml::support {

namespace {
constexpr int kBuckets = 64;
}  // namespace

Histogram::Histogram() : buckets_(kBuckets, 0) {}

int Histogram::bucket_for(double value_ns) {
  if (value_ns < 1.0) return 0;
  const int b = static_cast<int>(std::floor(std::log2(value_ns)));
  return std::clamp(b, 0, kBuckets - 1);
}

void Histogram::record(double value_ns) {
  if (value_ns < 0.0) value_ns = 0.0;
  buckets_[bucket_for(value_ns)] += 1;
  if (count_ == 0) {
    min_ = max_ = value_ns;
  } else {
    min_ = std::min(min_, value_ns);
    max_ = std::max(max_, value_ns);
  }
  sum_ += value_ns;
  count_ += 1;
}

void Histogram::merge(const Histogram& other) {
  for (int i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  if (other.count_ > 0) {
    min_ = count_ == 0 ? other.min_ : std::min(min_, other.min_);
    max_ = count_ == 0 ? other.max_ : std::max(max_, other.max_);
  }
  sum_ += other.sum_;
  count_ += other.count_;
}

double Histogram::mean_ns() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::quantile_ns(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (static_cast<double>(seen) >= target) {
      // Midpoint of the bucket [2^i, 2^(i+1)).
      const double lo = i == 0 ? 0.0 : std::exp2(i);
      const double hi = std::exp2(i + 1);
      return std::min(0.5 * (lo + hi), max_);
    }
  }
  return max_;
}

std::uint64_t Histogram::count_below(double threshold_ns) const {
  std::uint64_t below = 0;
  for (int i = 0; i < kBuckets; ++i) {
    // Bucket i covers [2^i, 2^(i+1)); bucket 0 additionally absorbs [0, 1).
    const double hi = std::exp2(i + 1);
    if (hi > threshold_ns) break;
    below += buckets_[i];
  }
  return below;
}

std::string Histogram::to_json() const {
  std::ostringstream os;
  os << "{\"count\":" << count_ << ",\"sum_ns\":" << sum_
     << ",\"min_ns\":" << min_ns() << ",\"max_ns\":" << max_
     << ",\"buckets\":{";
  bool first = true;
  for (int i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    if (!first) os << ',';
    first = false;
    os << '"' << i << "\":" << buckets_[i];
  }
  os << "}}";
  return os.str();
}

namespace {

/// Finds `"key":` in `json` and parses the number that follows. Sufficient
/// for the fixed shape to_json emits; not a general JSON parser.
double scan_number(const std::string& json, const std::string& key,
                   double fallback) {
  const std::string needle = '"' + key + "\":";
  const auto pos = json.find(needle);
  if (pos == std::string::npos) return fallback;
  try {
    return std::stod(json.substr(pos + needle.size()));
  } catch (...) {
    return fallback;
  }
}

}  // namespace

Histogram Histogram::from_json(const std::string& json) {
  Histogram h;
  h.count_ = static_cast<std::uint64_t>(scan_number(json, "count", 0.0));
  h.sum_ = scan_number(json, "sum_ns", 0.0);
  h.min_ = scan_number(json, "min_ns", 0.0);
  h.max_ = scan_number(json, "max_ns", 0.0);
  const auto open = json.find("\"buckets\":{");
  if (open != std::string::npos) {
    std::size_t at = open + 11;
    while (at < json.size() && json[at] != '}') {
      if (json[at] != '"') {
        ++at;
        continue;
      }
      const auto key_end = json.find('"', at + 1);
      const auto colon = json.find(':', key_end);
      if (key_end == std::string::npos || colon == std::string::npos) break;
      try {
        const int bucket = std::stoi(json.substr(at + 1, key_end - at - 1));
        const std::uint64_t n = std::stoull(json.substr(colon + 1));
        if (bucket >= 0 && bucket < kBuckets) h.buckets_[bucket] += n;
      } catch (...) {
        break;
      }
      at = json.find_first_of(",}", colon);
      if (at == std::string::npos) break;
      if (json[at] == ',') ++at;
    }
  }
  return h;
}

std::string Histogram::summary_ms() const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  os << "n=" << count_ << " mean=" << mean_ns() / 1e6 << "ms"
     << " p50=" << quantile_ns(0.5) / 1e6 << "ms"
     << " p95=" << quantile_ns(0.95) / 1e6 << "ms"
     << " p99=" << quantile_ns(0.99) / 1e6 << "ms"
     << " max=" << max_ns() / 1e6 << "ms";
  return os.str();
}

void Histogram::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = min_ = max_ = 0.0;
}

}  // namespace asyncml::support
