#include "support/status.hpp"

namespace asyncml::support {

const char* status_code_name(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kCancelled: return "CANCELLED";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kDataLoss: return "DATA_LOSS";
  }
  return "UNKNOWN";
}

}  // namespace asyncml::support
