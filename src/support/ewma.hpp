#pragma once

// Exponentially weighted moving average, used by the coordinator for the
// per-worker average-task-completion-time entry of the STAT table.  An EWMA
// tracks drifting service times (a worker that *becomes* a straggler) better
// than a plain mean; the plain mean is also kept for reporting.

namespace asyncml::support {

class Ewma {
 public:
  /// `alpha` is the weight of the newest observation, in (0, 1].
  explicit Ewma(double alpha = 0.2) : alpha_(alpha) {}

  void observe(double x) noexcept {
    count_ += 1;
    sum_ += x;
    value_ = (count_ == 1) ? x : alpha_ * x + (1.0 - alpha_) * value_;
  }

  [[nodiscard]] double value() const noexcept { return value_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  [[nodiscard]] long count() const noexcept { return count_; }

  void reset() noexcept {
    value_ = 0.0;
    sum_ = 0.0;
    count_ = 0;
  }

 private:
  double alpha_;
  double value_ = 0.0;
  double sum_ = 0.0;
  long count_ = 0;
};

}  // namespace asyncml::support
