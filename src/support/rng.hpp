#pragma once

// Deterministic random-number streams for the whole framework.
//
// Every source of randomness in the library (mini-batch sampling, synthetic
// data generation, straggler delay draws) flows through an RngStream so that
// experiments are reproducible given an experiment seed.  Streams are derived
// from a root seed plus an arbitrary sequence of "substream" keys via
// SplitMix64 mixing, which guarantees well-separated state even for adjacent
// keys (worker 0 / worker 1, iteration k / iteration k+1).
//
// The generator itself is xoshiro256**, a small, fast, high-quality PRNG that
// is trivially copyable — important because task closures capture streams by
// value when shipped to workers.

#include <array>
#include <cstdint>
#include <vector>

namespace asyncml::support {

/// SplitMix64 step: mixes 64-bit state into a well-distributed output.
/// Used both for seeding xoshiro and for deriving substream seeds.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Mixes a seed and a key into a new seed; `derive(derive(s,a),b)` differs
/// from `derive(derive(s,b),a)` so key order matters (substream paths).
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t seed,
                                                  std::uint64_t key) noexcept {
  std::uint64_t s = seed ^ (0x9e3779b97f4a7c15ULL + (key << 6) + (key >> 2));
  return splitmix64(s);
}

/// xoshiro256** 1.0 — trivially copyable deterministic PRNG.
/// Satisfies UniformRandomBitGenerator so it can drive <random> distributions.
class RngStream {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four words of state from `seed` via SplitMix64 (the
  /// initialization recommended by the xoshiro authors).
  explicit RngStream(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept
      : seed_path_(seed) {
    std::uint64_t s = seed;
    for (auto& word : state_) word = splitmix64(s);
  }

  /// Derives an independent stream identified by `key` from this stream's
  /// original seed path. Typical usage:
  ///   RngStream root(exp_seed);
  ///   RngStream worker = root.substream(worker_id);
  ///   RngStream task   = worker.substream(iteration);
  [[nodiscard]] RngStream substream(std::uint64_t key) const noexcept {
    return RngStream(derive_seed(seed_path_, key));
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double next_double() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, n). Uses Lemire's multiply-shift rejection-free
  /// approximation, adequate for sampling (not cryptography).
  [[nodiscard]] std::uint64_t next_below(std::uint64_t n) noexcept {
    __extension__ using u128 = unsigned __int128;
    const u128 m = static_cast<u128>((*this)()) * static_cast<u128>(n);
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Marsaglia polar method (stateless across calls: the
  /// spare value is discarded to keep the stream trivially copyable).
  [[nodiscard]] double next_gaussian() noexcept;

  /// Bernoulli trial with probability p.
  [[nodiscard]] bool bernoulli(double p) noexcept { return next_double() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  std::uint64_t seed_path_ = 0;

  // Re-seed path bookkeeping: the public ctor records the seed so substream()
  // derives from the *path*, not the evolving generator state.
 public:
  [[nodiscard]] std::uint64_t seed_path() const noexcept { return seed_path_; }
};

/// Samples `k` distinct indices from [0, n) without replacement
/// (Floyd's algorithm; O(k) expected, deterministic given the stream).
[[nodiscard]] std::vector<std::size_t> sample_without_replacement(RngStream& rng,
                                                                  std::size_t n,
                                                                  std::size_t k);

}  // namespace asyncml::support
