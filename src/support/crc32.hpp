#pragma once

// IEEE CRC-32 (the zlib/PNG polynomial, reflected, table-driven).
//
// One implementation serves every integrity check in the tree: the transport
// frames it originally lived in (transport/frame.hpp keeps a thin alias) and
// the disk tier's blob + manifest records (store/disk/).  The disk store must
// not depend on the transport layer, hence the home here in support/.

#include <cstdint>
#include <span>

namespace asyncml::support {

/// CRC-32 of `data` (init 0xFFFFFFFF, final xor, polynomial 0xEDB88320).
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data);

/// Incremental form: `crc32_update(crc32_init(), chunk)` chained over chunks,
/// then `crc32_final` — equal to crc32() over the concatenation.
[[nodiscard]] constexpr std::uint32_t crc32_init() noexcept { return 0xFFFFFFFFu; }
[[nodiscard]] std::uint32_t crc32_update(std::uint32_t state,
                                         std::span<const std::uint8_t> data);
[[nodiscard]] constexpr std::uint32_t crc32_final(std::uint32_t state) noexcept {
  return state ^ 0xFFFFFFFFu;
}

}  // namespace asyncml::support
