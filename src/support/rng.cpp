#include "support/rng.hpp"

#include <cmath>
#include <unordered_set>

namespace asyncml::support {

double RngStream::next_gaussian() noexcept {
  // Marsaglia polar method; discards the spare so the object stays a pure
  // function of its state words (no cached flag to copy around).
  double u, v, s;
  do {
    u = 2.0 * next_double() - 1.0;
    v = 2.0 * next_double() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  return u * std::sqrt(-2.0 * std::log(s) / s);
}

std::vector<std::size_t> sample_without_replacement(RngStream& rng, std::size_t n,
                                                    std::size_t k) {
  if (k >= n) {
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = i;
    return all;
  }
  // Floyd's algorithm: for j in [n-k, n), draw t in [0, j]; insert t or j.
  std::unordered_set<std::size_t> chosen;
  chosen.reserve(k * 2);
  std::vector<std::size_t> out;
  out.reserve(k);
  for (std::size_t j = n - k; j < n; ++j) {
    const std::size_t t = static_cast<std::size_t>(rng.next_below(j + 1));
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

}  // namespace asyncml::support
