#pragma once

// Monotonic timing helpers. All engine timing uses steady_clock; wall-clock
// results in experiments are reported in milliseconds as in the paper.

#include <chrono>
#include <cstdint>

namespace asyncml::support {

using Clock = std::chrono::steady_clock;
using TimePoint = Clock::time_point;
using Nanos = std::chrono::nanoseconds;

/// A started stopwatch measuring elapsed time since construction or reset().
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  [[nodiscard]] Nanos elapsed() const { return Clock::now() - start_; }

  [[nodiscard]] double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(elapsed()).count();
  }

  [[nodiscard]] double elapsed_us() const {
    return std::chrono::duration<double, std::micro>(elapsed()).count();
  }

  [[nodiscard]] TimePoint start() const { return start_; }

 private:
  TimePoint start_;
};

/// Converts a duration to fractional milliseconds.
template <typename Rep, typename Period>
[[nodiscard]] double to_ms(std::chrono::duration<Rep, Period> d) {
  return std::chrono::duration<double, std::milli>(d).count();
}

}  // namespace asyncml::support
