#include "core/shard_route.hpp"

#include <chrono>
#include <cstdio>
#include <map>
#include <utility>

#include "core/async_context.hpp"
#include "engine/actions.hpp"

namespace asyncml::core {
namespace {

/// Positional left-to-right fold of one group — the single combine order used
/// everywhere (worker tasks and driver fallbacks alike), so a group's sum is
/// bit-identical no matter where it runs.
linalg::GradVector fold_group(std::vector<linalg::GradVector> chunk) {
  linalg::GradVector acc = std::move(chunk.front());
  for (std::size_t i = 1; i < chunk.size(); ++i) acc.add(chunk[i]);
  return acc;
}

linalg::GradVector combine_op(linalg::GradVector a, const linalg::GradVector& b) {
  a.add(b);
  return a;
}

/// One group awaiting its combine result.  The chunk is retained so a failed
/// dispatch (or context shutdown) can fold on the driver instead.
struct PendingGroup {
  std::size_t shard = 0;
  std::size_t group = 0;
  std::vector<linalg::GradVector> chunk;
  int attempts = 0;
};

}  // namespace

linalg::GradVector tree_combine_async(AsyncContext& ac,
                                      std::vector<linalg::GradVector> parts,
                                      const ShardMap* map,
                                      const linalg::GradVectorConfig& total_cfg,
                                      const TreeCombineOptions& options) {
  linalg::GradVector total(total_cfg);
  if (parts.empty()) return total;

  // Per-shard input levels.  A coordinate lives in exactly one shard and the
  // split preserves the per-partition positional order, so each shard's tree
  // replays the S=1 tree's addition sequence for its coordinates.
  const bool sharded = map != nullptr && map->num_shards() > 1 &&
                       map->scheme() == ShardScheme::kRange;
  std::vector<std::vector<linalg::GradVector>> levels;
  std::vector<std::uint32_t> offsets;
  if (sharded) {
    const std::uint32_t num_shards = map->num_shards();
    levels.resize(num_shards);
    offsets.resize(num_shards);
    for (std::uint32_t s = 0; s < num_shards; ++s) {
      offsets[s] = map->range_bounds()[s];
      levels[s].reserve(parts.size());
    }
    for (linalg::GradVector& part : parts) {
      std::vector<linalg::GradVector> pieces =
          part.split_ranges(map->range_bounds());
      for (std::uint32_t s = 0; s < num_shards; ++s) {
        levels[s].push_back(std::move(pieces[s]));
      }
    }
    parts.clear();
  } else {
    levels.push_back(std::move(parts));
    offsets.push_back(0);
  }

  engine::Cluster& cluster = ac.cluster();
  const int fanout = options.fanout < 2 ? 2 : options.fanout;
  const int num_workers = cluster.num_workers();
  int rr = 0;
  const auto next_worker = [&]() -> engine::WorkerId {
    for (int tries = 0; tries < num_workers; ++tries) {
      const auto w = static_cast<engine::WorkerId>(rr++ % num_workers);
      if (ac.scheduler().is_member(w) && cluster.worker_alive(w)) return w;
    }
    return -1;
  };

  std::map<engine::TaskId, PendingGroup> pending;
  // Registers and ships one group's combine task; false leaves `g` intact for
  // the driver-side fallback fold.
  const auto dispatch_group = [&](PendingGroup& g) -> bool {
    const engine::WorkerId worker = next_worker();
    if (worker < 0) return false;
    engine::TaskSpec spec;
    spec.id = cluster.next_task_id();
    spec.partition = engine::kNoPartition;
    spec.seq = options.seq;
    spec.model_version = options.model_version;
    spec.fn = engine::make_combine_fn<linalg::GradVector>(g.chunk, &combine_op);
    spec.service_floor_ms = 0.0;  // combine cost is the real fold time
    spec.rng_seed = options.rng_seed;
    // Non-identity registration: combine tasks have no (partition, seq)
    // identity — their results are always delivered, and a crash surfaces as
    // a synthesized failure on the failure queue.
    ac.coordinator().on_dispatch(worker, 1, spec.model_version);
    const engine::TaskId id = spec.id;
    if (!cluster.submit(worker, std::move(spec))) {
      engine::TaskSpec aborted;
      aborted.partition = engine::kNoPartition;
      aborted.seq = options.seq;
      aborted.model_version = options.model_version;
      ac.coordinator().on_dispatch_aborted(worker, aborted);
      return false;
    }
    pending.emplace(id, std::move(g));
    return true;
  };

  // Level rounds: every shard whose level still exceeds the fanout combines
  // this round (all shards in lockstep — they share the level size).
  while (true) {
    bool any = false;
    for (const auto& level : levels) {
      if (static_cast<int>(level.size()) > fanout) {
        any = true;
        break;
      }
    }
    if (!any) break;

    std::vector<std::vector<linalg::GradVector>> next(levels.size());
    for (std::size_t s = 0; s < levels.size(); ++s) {
      auto& level = levels[s];
      if (static_cast<int>(level.size()) <= fanout) {
        next[s] = std::move(level);
        continue;
      }
      const std::size_t groups =
          (level.size() + static_cast<std::size_t>(fanout) - 1) /
          static_cast<std::size_t>(fanout);
      next[s].resize(groups);
      for (std::size_t gi = 0; gi < groups; ++gi) {
        const std::size_t begin = gi * static_cast<std::size_t>(fanout);
        const std::size_t end =
            std::min(level.size(), begin + static_cast<std::size_t>(fanout));
        PendingGroup g;
        g.shard = s;
        g.group = gi;
        g.chunk.reserve(end - begin);
        for (std::size_t i = begin; i < end; ++i) {
          g.chunk.push_back(std::move(level[i]));
        }
        if (!dispatch_group(g)) next[s][gi] = fold_group(std::move(g.chunk));
      }
      level.clear();
    }

    using namespace std::chrono_literals;
    while (!pending.empty()) {
      if (auto collected = ac.coordinator().collect_for(2ms);
          collected.has_value()) {
        ac.scheduler().on_result_collected(collected->result.partition);
        const auto it = pending.find(collected->result.id);
        if (it == pending.end()) continue;  // foreign result; not ours to hold
        next[it->second.shard][it->second.group] =
            collected->result.payload.get<linalg::GradVector>();
        pending.erase(it);
        continue;
      }
      while (auto failed = ac.coordinator().try_collect_failure()) {
        const auto it = pending.find(failed->id);
        if (it == pending.end()) continue;
        PendingGroup g = std::move(it->second);
        pending.erase(it);
        g.attempts += 1;
        if (g.attempts >= 3 || !dispatch_group(g)) {
          next[g.shard][g.group] = fold_group(std::move(g.chunk));
        }
      }
      if (ac.coordinator().stopped()) {
        // Shutdown: no further results will ever arrive — fold the remaining
        // groups here (bit-identical: the fold order is positional).
        for (auto& [id, g] : pending) {
          next[g.shard][g.group] = fold_group(std::move(g.chunk));
        }
        pending.clear();
      }
    }
    levels = std::move(next);
  }

  // Driver epilogue: fold each shard's remaining ≤fanout partials in order,
  // then place the shard total at its range offset.
  for (std::size_t s = 0; s < levels.size(); ++s) {
    if (levels[s].empty()) continue;
    total.merge_from(fold_group(std::move(levels[s])), offsets[s]);
  }
  return total;
}

}  // namespace asyncml::core
