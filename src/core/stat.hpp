#pragma once

// The STAT table — the paper's per-worker bookkeeping structure (§4.1).
//
// For every worker the coordinator maintains: availability, staleness,
// average task-completion time, and progress counters.  Barrier-control
// strategies (§4.4, Listing 2) are predicates over snapshots of this table.
//
// Two staleness notions are tracked because the paper's uses require both:
//  * result_staleness — staleness of the worker's most recent *result*
//    (current version − version the result computed against); this is the
//    per-result attribute returned by ASYNCcollectAll and used by
//    staleness-dependent learning rates (Listing 1).
//  * task_staleness — how far behind the model the worker's most recent
//    *assignment* is (current version − version of the last dispatched task);
//    the SSP gate (max staleness < s) reads this, since it bounds the
//    staleness of updates still in flight.

#include <cstdint>
#include <string>
#include <vector>

#include "engine/types.hpp"

namespace asyncml::core {

struct WorkerStat {
  engine::WorkerId id = 0;
  /// True when the worker has no outstanding tasks (paper: "available if it
  /// is not executing a task").
  bool available = true;
  /// Tasks currently in flight on this worker.
  int outstanding = 0;
  /// current_version − version of the last collected result from this worker.
  std::uint64_t result_staleness = 0;
  /// current_version − version of the last task dispatched to this worker.
  std::uint64_t task_staleness = 0;
  /// Smallest model version among this worker's outstanding tasks — NOT the
  /// last dispatch: a 2-core worker can hold an old queued task while newer
  /// ones are dispatched past it. Meaningful only when outstanding > 0.
  engine::Version min_outstanding_version = 0;
  /// EWMA of task service time (ms) — "average-task-completion time".
  double avg_task_ms = 0.0;
  /// Plain mean of task service times (ms), for reporting.
  double mean_task_ms = 0.0;
  std::uint64_t tasks_completed = 0;
  std::uint64_t tasks_failed = 0;
  engine::Version last_result_version = 0;
  engine::Version last_dispatch_version = 0;
  bool ever_dispatched = false;
};

/// Immutable snapshot of the STAT table plus the server version at the time
/// it was taken. What `AC.STAT` returns.
struct StatSnapshot {
  std::vector<WorkerStat> workers;
  engine::Version current_version = 0;

  [[nodiscard]] int num_workers() const noexcept {
    return static_cast<int>(workers.size());
  }

  [[nodiscard]] int available_workers() const noexcept;

  /// Maximum task staleness over workers with tasks currently in flight —
  /// the quantity SSP bounds. Idle workers are excluded (their staleness is
  /// reset by the next dispatch).
  [[nodiscard]] std::uint64_t max_staleness() const noexcept;

  /// Smallest model version any in-flight task was dispatched against —
  /// no running task can read a pinned model older than this, which makes it
  /// the history GC bound (history-reading solvers additionally floor it by
  /// their SampleVersionTable minimum). Falls back to `current_version` when
  /// nothing is in flight.
  [[nodiscard]] engine::Version min_inflight_version() const noexcept;

  /// Mean of workers' EWMA task times; 0 when nothing completed yet.
  [[nodiscard]] double mean_avg_task_ms() const noexcept;

  /// Median of workers' EWMA task times over workers with completions (lower
  /// median for even counts); 0 when nothing completed yet. The speculation
  /// threshold and the median-completion barrier filter key off this rather
  /// than the mean, which a single long-tail straggler can drag arbitrarily
  /// high.
  [[nodiscard]] double median_avg_task_ms() const;

  /// Compact single-line rendering for logs.
  [[nodiscard]] std::string to_string() const;
};

}  // namespace asyncml::core
