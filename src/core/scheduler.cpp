#include "core/scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

#include "data/partition.hpp"

namespace asyncml::core {

namespace {

/// Per-worker speed estimate in ms/task: the EWMA when the worker has
/// history, `fallback` (cluster mean of the workers that do) otherwise.
double speed_ms(const WorkerStat& row, double fallback) {
  return row.tasks_completed > 0 ? row.avg_task_ms : fallback;
}

}  // namespace

AsyncScheduler::AsyncScheduler(engine::Cluster& cluster, Coordinator& coordinator)
    : cluster_(cluster), coordinator_(coordinator) {
  owned_.resize(static_cast<std::size_t>(cluster.num_workers()));
  member_.assign(static_cast<std::size_t>(cluster.num_workers()), true);
  filling_.assign(static_cast<std::size_t>(cluster.num_workers()), false);
}

void AsyncScheduler::set_num_partitions(int num_partitions) {
  num_partitions_ = num_partitions;
  busy_.assign(static_cast<std::size_t>(num_partitions), false);
  inflight_.assign(static_cast<std::size_t>(num_partitions), InflightRecord{});
  pending_migration_ms_.assign(static_cast<std::size_t>(num_partitions), 0.0);
  busy_count_ = 0;
  // Distribute over *members* only: with all workers members this is exactly
  // data::partitions_of_worker's p % W placement (bit-compatible with the
  // fixed scheduler); dormant workers own nothing until admitted.
  std::vector<engine::WorkerId> live;
  for (int w = 0; w < cluster_.num_workers(); ++w) {
    owned_[static_cast<std::size_t>(w)].clear();
    if (member_[static_cast<std::size_t>(w)]) live.push_back(w);
  }
  assert(!live.empty() && "AsyncScheduler: member set must not be empty");
  for (engine::PartitionId p = 0; p < num_partitions; ++p) {
    owned_[static_cast<std::size_t>(live[static_cast<std::size_t>(p) % live.size()])]
        .push_back(p);
  }
  cursor_.assign(static_cast<std::size_t>(cluster_.num_workers()), 0);
}

void AsyncScheduler::set_members(std::vector<bool> members) {
  assert(static_cast<int>(members.size()) == cluster_.num_workers());
  member_ = std::move(members);
  filling_.assign(member_.size(), false);
}

int AsyncScheduler::member_count() const {
  return static_cast<int>(std::count(member_.begin(), member_.end(), true));
}

bool AsyncScheduler::dispatchable(engine::WorkerId worker) const {
  return member_[static_cast<std::size_t>(worker)] && cluster_.worker_alive(worker);
}

int AsyncScheduler::admit_worker(engine::WorkerId worker) {
  if (member_[static_cast<std::size_t>(worker)]) return 0;
  member_[static_cast<std::size_t>(worker)] = true;
  filling_[static_cast<std::size_t>(worker)] = true;
  return rebalance_joiners();
}

int AsyncScheduler::rebalance_joiners() {
  int moved = 0;
  const int members = member_count();
  const int share = members > 0 ? num_partitions_ / members : 0;
  for (int w = 0; w < cluster_.num_workers(); ++w) {
    if (!filling_[static_cast<std::size_t>(w)]) continue;
    if (!member_[static_cast<std::size_t>(w)] || !cluster_.worker_alive(w)) {
      filling_[static_cast<std::size_t>(w)] = false;  // crashed before filling
      continue;
    }
    moved += fill_toward_share(w);
    if (static_cast<int>(owned_[static_cast<std::size_t>(w)].size()) >= share) {
      filling_[static_cast<std::size_t>(w)] = false;  // reached its fair share
    }
  }
  return moved;
}

int AsyncScheduler::fill_toward_share(engine::WorkerId worker) {
  const int members = member_count();
  const int share = members > 0 ? num_partitions_ / members : 0;
  // Pull idle partitions from the most-loaded members until the newcomer
  // holds its fair share; busy partitions stay put (their in-flight task
  // already targets the old owner — moving them buys nothing now). If
  // everything is busy right now, the membership poll retries on the next
  // collect pass (rebalance_empty_members), when results have freed some.
  int moved = 0;
  while (static_cast<int>(owned_[static_cast<std::size_t>(worker)].size()) < share) {
    int victim = -1;
    engine::PartitionId candidate = engine::kNoPartition;
    for (int w = 0; w < cluster_.num_workers(); ++w) {
      if (w == worker || !member_[static_cast<std::size_t>(w)]) continue;
      const auto& owned = owned_[static_cast<std::size_t>(w)];
      if (static_cast<int>(owned.size()) <= share || owned.size() <= 1) continue;
      if (victim >= 0 &&
          owned.size() <= owned_[static_cast<std::size_t>(victim)].size()) {
        continue;
      }
      for (const engine::PartitionId p : owned) {
        if (!busy_[static_cast<std::size_t>(p)]) {
          victim = w;
          candidate = p;
          break;
        }
      }
    }
    if (victim < 0) break;
    transfer_ownership(candidate, victim, worker);
    ++moved;
  }
  return moved;
}

int AsyncScheduler::handle_worker_death(engine::WorkerId worker) {
  if (!member_[static_cast<std::size_t>(worker)]) return 0;
  member_[static_cast<std::size_t>(worker)] = false;
  // Every partition the dead worker owned — busy ones included; their
  // in-flight tasks surface as crash-synthesized failures and are
  // resubmitted to the new owner's side of the cluster — moves to the
  // currently least-loaded alive member.
  const std::vector<engine::PartitionId> orphans =
      owned_[static_cast<std::size_t>(worker)];
  int moved = 0;
  for (const engine::PartitionId p : orphans) {
    int heir = -1;
    for (int w = 0; w < cluster_.num_workers(); ++w) {
      if (!dispatchable(w)) continue;
      if (heir < 0 ||
          owned_[static_cast<std::size_t>(w)].size() <
              owned_[static_cast<std::size_t>(heir)].size()) {
        heir = w;
      }
    }
    if (heir < 0) break;  // no member left alive: nothing to inherit the data
    transfer_ownership(p, worker, heir);
    ++moved;
  }
  return moved;
}

void AsyncScheduler::set_policy(SchedulerPolicy policy) { policy_ = std::move(policy); }

const std::vector<engine::PartitionId>& AsyncScheduler::partitions_of(
    engine::WorkerId worker) const {
  if (worker < 0 || worker >= cluster_.num_workers()) {
    throw std::out_of_range("AsyncScheduler::partitions_of: worker " +
                            std::to_string(worker) + " out of range [0, " +
                            std::to_string(cluster_.num_workers()) + ")");
  }
  return owned_[static_cast<std::size_t>(worker)];
}

std::size_t AsyncScheduler::partition_data_bytes(engine::PartitionId p) const {
  const auto index = static_cast<std::size_t>(p);
  return index < policy_.partition_bytes.size() ? policy_.partition_bytes[index] : 0;
}

int AsyncScheduler::idle_owned(engine::WorkerId worker) const {
  int idle = 0;
  for (const engine::PartitionId p : owned_[static_cast<std::size_t>(worker)]) {
    idle += busy_[static_cast<std::size_t>(p)] ? 0 : 1;
  }
  return idle;
}

int AsyncScheduler::dispatch_partitions(engine::WorkerId worker,
                                        const TaskFactory& factory, std::uint64_t seq,
                                        int budget) {
  const auto& partitions = owned_[static_cast<std::size_t>(worker)];
  if (partitions.empty() || budget == 0) return 0;

  // Round-robin over the worker's partitions (starting at the cursor) so a
  // capacity-limited worker cycles through ALL its data rather than
  // refilling the same freshly-freed partition forever. The scan base is
  // fixed for the whole loop; the cursor advances past the last dispatch.
  std::size_t& cursor = cursor_[static_cast<std::size_t>(worker)];
  const std::size_t start = cursor;
  std::vector<engine::TaskSpec> specs;
  for (std::size_t scanned = 0; scanned < partitions.size(); ++scanned) {
    if (budget >= 0 && static_cast<int>(specs.size()) >= budget) break;
    const engine::PartitionId p = partitions[(start + scanned) % partitions.size()];
    if (busy_[static_cast<std::size_t>(p)]) continue;
    engine::TaskSpec spec = factory(p);
    spec.id = cluster_.next_task_id();
    spec.seq = seq;
    spec.migration_ms = pending_migration_ms_[static_cast<std::size_t>(p)];
    pending_migration_ms_[static_cast<std::size_t>(p)] = 0.0;
    busy_[static_cast<std::size_t>(p)] = true;
    ++busy_count_;
    specs.push_back(std::move(spec));
    cursor = (start + scanned + 1) % partitions.size();
  }
  if (specs.empty()) return 0;
  // Register outstanding *before* submitting so the coordinator never
  // observes a result for a task it does not know about. Registration is
  // per task identity (partition, seq): that arms first-result-wins
  // deduplication should a speculative replica be launched later.
  for (const engine::TaskSpec& spec : specs) {
    coordinator_.on_task_dispatch(worker, spec);
  }
  const support::TimePoint now = support::Clock::now();
  const int already_queued =
      coordinator_.outstanding(worker) - static_cast<int>(specs.size());
  int batch_index = 0;
  int accepted = 0;
  for (engine::TaskSpec& spec : specs) {
    auto& record = inflight_[static_cast<std::size_t>(spec.partition)];
    record.spec = spec;  // exact copy: a replica must recompute bit-identically
    record.dispatched_at = now;
    record.worker = worker;
    record.queue_ahead = std::max(0, already_queued) + batch_index;
    record.speculated = false;
    record.valid = true;
    if (cluster_.submit(worker, spec)) {
      ++batch_index;
      ++accepted;
      continue;
    }
    // The transport rejected the submit (fault injection, shutdown): unwind
    // the registration and free the partition, or the phantom task would pin
    // `outstanding` — and with it sync-round result counts, the collect
    // deadlock guard, and the history-GC bound — forever. The partition is
    // simply not part of this round; the next dispatch pass retries it.
    coordinator_.on_dispatch_aborted(worker, spec);
    busy_[static_cast<std::size_t>(spec.partition)] = false;
    --busy_count_;
    record.valid = false;
  }
  return accepted;
}

int AsyncScheduler::dispatch_worker(engine::WorkerId worker, const TaskFactory& factory) {
  if (!dispatchable(worker)) return 0;
  const int cores = cluster_.config().cores_per_worker;
  return dispatch_partitions(worker, factory, ++round_, cores);
}

int AsyncScheduler::dispatch_eligible(const BarrierControl& barrier,
                                      const TaskFactory& factory) {
  const StatSnapshot stat = coordinator_.stat();
  if (!barrier.gate(stat)) return 0;
  if (policy_.steal_mode == StealMode::kLocality) {
    steal_pass(stat, &barrier, /*capacity_mode=*/true);
  }
  const int cores = cluster_.config().cores_per_worker;
  // All tasks admitted by one dispatch call share one round sequence: they
  // are peers of the same logical iteration (partition ids already separate
  // their sampling streams).
  const std::uint64_t seq = round_ + 1;
  int submitted = 0;
  for (const WorkerStat& w : stat.workers) {
    if (!dispatchable(w.id)) continue;
    const int free = cores - w.outstanding;
    if (free <= 0) continue;
    if (!barrier.filter(w, stat)) continue;
    submitted += dispatch_partitions(w.id, factory, seq, free);
  }
  if (submitted > 0) round_ = seq;
  return submitted;
}

int AsyncScheduler::dispatch_all(const TaskFactory& factory) {
  if (policy_.steal_mode == StealMode::kLocality) {
    steal_pass(coordinator_.stat(), /*barrier=*/nullptr, /*capacity_mode=*/false);
  }
  const std::uint64_t seq = ++round_;
  int submitted = 0;
  for (int w = 0; w < cluster_.num_workers(); ++w) {
    if (!dispatchable(w)) continue;
    submitted += dispatch_partitions(w, factory, seq, /*budget=*/-1);
  }
  return submitted;
}

int AsyncScheduler::steal_pass(const StatSnapshot& stat, const BarrierControl* barrier,
                               bool capacity_mode) {
  const int workers = cluster_.num_workers();
  if (workers < 2 || num_partitions_ == 0) return 0;
  const double fallback = stat.mean_avg_task_ms();
  if (fallback <= 0.0) return 0;  // no service history yet: nothing to steal on
  const double cores = static_cast<double>(cluster_.config().cores_per_worker);

  // Live working copies; the stat snapshot's outstanding counts are fixed
  // for the pass (no dispatch happens inside it).
  std::vector<int> idle(static_cast<std::size_t>(workers));
  std::vector<int> busy_owned(static_cast<std::size_t>(workers));
  std::vector<double> speed(static_cast<std::size_t>(workers));
  std::vector<bool> passes(static_cast<std::size_t>(workers), true);
  for (int w = 0; w < workers; ++w) {
    const WorkerStat& row = stat.workers[static_cast<std::size_t>(w)];
    idle[static_cast<std::size_t>(w)] = idle_owned(w);
    busy_owned[static_cast<std::size_t>(w)] =
        static_cast<int>(owned_[static_cast<std::size_t>(w)].size()) -
        idle[static_cast<std::size_t>(w)];
    speed[static_cast<std::size_t>(w)] = speed_ms(row, fallback);
    if (barrier != nullptr) passes[static_cast<std::size_t>(w)] = barrier->filter(row, stat);
  }
  // Fluid drain-time estimate: (in-flight + idle backlog) × ms/task ÷ cores.
  const auto est = [&](int w, int extra_idle) {
    const WorkerStat& row = stat.workers[static_cast<std::size_t>(w)];
    const double tasks =
        static_cast<double>(row.outstanding + idle[static_cast<std::size_t>(w)] + extra_idle);
    return tasks * speed[static_cast<std::size_t>(w)] / cores;
  };

  int moves = 0;
  while (moves < num_partitions_) {
    // Victim: the most-backlogged worker that has an idle partition to give.
    // Only a barrier-shunned victim may lose its *last* partition — a
    // filtered-out worker cannot run it anyway, while taking a healthy
    // worker's last partition would just move the imbalance around.
    int victim = -1;
    for (int w = 0; w < workers; ++w) {
      if (idle[static_cast<std::size_t>(w)] == 0) continue;
      const bool may_lose_last = barrier != nullptr && !passes[static_cast<std::size_t>(w)];
      if (owned_[static_cast<std::size_t>(w)].size() <= 1 && !may_lose_last) continue;
      if (victim < 0 || est(w, 0) > est(victim, 0)) victim = w;
    }
    if (victim < 0) break;

    // Thief: the least-loaded eligible worker. In capacity mode (the
    // asynchronous path) a thief must have free capacity and no idle owned
    // partition — it steals only when it would otherwise sit idle.
    int thief = -1;
    for (int w = 0; w < workers; ++w) {
      if (w == victim) continue;
      if (barrier != nullptr && !passes[static_cast<std::size_t>(w)]) continue;
      if (capacity_mode) {
        const WorkerStat& row = stat.workers[static_cast<std::size_t>(w)];
        if (row.outstanding >= static_cast<int>(cores)) continue;
        if (idle[static_cast<std::size_t>(w)] > 0) continue;
        // A worker whose owned partitions are scheduler-busy but already
        // drained by the coordinator (result awaiting collection) is about
        // to get local work back — it is not starving, so it must not steal.
        if (busy_owned[static_cast<std::size_t>(w)] > row.outstanding) continue;
      }
      if (thief < 0 || est(w, 0) < est(thief, 0)) thief = w;
    }
    if (thief < 0) break;

    // Move only if it beats the hysteresis margin: the victim's backlog must
    // strictly dominate both post-move drains, so EWMA jitter on a balanced
    // cluster never reshuffles ownership.
    const double before = est(victim, 0);
    const double after = std::max(est(victim, -1), est(thief, +1));
    if (before <= policy_.steal_margin * after) break;

    // Steal the partition the victim would service last (just before its
    // round-robin cursor): the least disruption to its local iteration.
    const auto& owned = owned_[static_cast<std::size_t>(victim)];
    const std::size_t cursor = cursor_[static_cast<std::size_t>(victim)];
    engine::PartitionId stolen = engine::kNoPartition;
    for (std::size_t offset = 1; offset <= owned.size(); ++offset) {
      const std::size_t index = (cursor + owned.size() - offset) % owned.size();
      if (!busy_[static_cast<std::size_t>(owned[index])]) {
        stolen = owned[index];
        break;
      }
    }
    if (stolen == engine::kNoPartition) break;  // cannot happen: idle[victim] > 0
    transfer_ownership(stolen, victim, thief);
    idle[static_cast<std::size_t>(victim)] -= 1;
    idle[static_cast<std::size_t>(thief)] += 1;
    ++moves;
  }
  return moves;
}

void AsyncScheduler::transfer_ownership(engine::PartitionId partition,
                                        engine::WorkerId victim,
                                        engine::WorkerId thief) {
  auto& from = owned_[static_cast<std::size_t>(victim)];
  const auto it = std::find(from.begin(), from.end(), partition);
  const auto erased = static_cast<std::size_t>(it - from.begin());
  from.erase(it);
  std::size_t& cursor = cursor_[static_cast<std::size_t>(victim)];
  if (cursor > erased) --cursor;
  if (!from.empty()) cursor %= from.size(); else cursor = 0;
  owned_[static_cast<std::size_t>(thief)].push_back(partition);

  // The partition's rows must travel once; charge the transfer to its first
  // task on the new owner. Subsequent rounds are local again.
  const std::size_t bytes = partition_data_bytes(partition);
  pending_migration_ms_[static_cast<std::size_t>(partition)] +=
      cluster_.network().transfer_ms(bytes);
  cluster_.metrics().migration_bytes.add(bytes);
  cluster_.metrics().partitions_stolen.add(1);
  ++steals_;
}

int AsyncScheduler::maybe_speculate() {
  if ((policy_.speculation_factor <= 0.0 && policy_.lost_task_factor <= 0.0) ||
      cluster_.num_workers() < 2) {
    return 0;
  }
  if (busy_count_ == 0) return 0;
  const StatSnapshot stat = coordinator_.stat();
  const double median = stat.median_avg_task_ms();
  if (median <= 0.0) return 0;
  const double threshold_ms = policy_.speculation_factor * median;
  const double lost_ms = policy_.lost_task_factor * median;
  const support::TimePoint now = support::Clock::now();
  const int cores = cluster_.config().cores_per_worker;

  std::vector<int> free(stat.workers.size());
  for (std::size_t w = 0; w < stat.workers.size(); ++w) {
    free[w] = cores - stat.workers[w].outstanding;
  }

  int launched = 0;
  for (engine::PartitionId p = 0; p < num_partitions_; ++p) {
    if (!busy_[static_cast<std::size_t>(p)]) continue;
    InflightRecord& record = inflight_[static_cast<std::size_t>(p)];
    if (!record.valid) continue;
    const double age_ms = support::to_ms(now - record.dispatched_at);

    // Past the lost horizon the result is presumed gone for good (dropped in
    // transit, or its holder crashed): waiting longer cannot pay off, so the
    // rescue bypasses the one-replica limit and the predicted-remaining
    // gate below. record.dispatched_at is refreshed on rescue, so a stranded
    // rescue re-arms only after a full horizon of its own.
    const bool presumed_lost = policy_.lost_task_factor > 0.0 && age_ms > lost_ms;
    if (!presumed_lost) {
      if (policy_.speculation_factor <= 0.0 || record.speculated) continue;
      if (age_ms <= threshold_ms) continue;

      // Overdue by the age rule. Replicate only if the assigned worker's
      // *predicted remaining* time still exceeds what a fresh replica needs:
      // queue position × the worker's current EWMA says when the task should
      // finish, so a deep-but-healthy queue is left alone while a task doomed
      // to a straggler's second wave is rescued as soon as the EWMA knows.
      const WorkerStat& assigned = stat.workers[static_cast<std::size_t>(record.worker)];
      const double waves = static_cast<double>(record.queue_ahead / cores + 1);
      const double predicted_remaining = waves * speed_ms(assigned, median) - age_ms;
      const double replica_cost =
          median + cluster_.network().transfer_ms(partition_data_bytes(p));
      if (predicted_remaining <= 1.2 * replica_cost) continue;
    }

    // Target: the fastest dispatchable worker with a free core, excluding
    // the one already holding the task. Regular speculation refuses targets
    // slower than ~the median (no rescue); a lost-task rescue takes any
    // alive member — the alternative is never finishing the round — and may
    // even queue behind a busy core: on a saturated cluster (dispatch refills
    // every core between collects) a free core never shows at sweep time, so
    // insisting on one would strand the rescue forever. Free cores still win
    // ties so the rescue runs as soon as possible.
    int target = -1;
    double target_speed = 0.0;
    bool target_free = false;
    for (int w = 0; w < cluster_.num_workers(); ++w) {
      if (w == record.worker) continue;
      const bool has_free = free[static_cast<std::size_t>(w)] > 0;
      if (!has_free && !presumed_lost) continue;
      if (!dispatchable(w)) continue;
      const double s = speed_ms(stat.workers[static_cast<std::size_t>(w)], median);
      if (!presumed_lost && s > 1.25 * median) continue;
      if (target < 0 || (has_free && !target_free) ||
          (has_free == target_free && s < target_speed)) {
        target = w;
        target_speed = s;
        target_free = has_free;
      }
    }
    if (target < 0) continue;

    engine::TaskSpec replica = record.spec;
    replica.id = cluster_.next_task_id();
    // The replica reads the partition remotely: charge the transfer, but do
    // not move ownership (the original owner keeps its local copy).
    const std::size_t bytes = partition_data_bytes(p);
    replica.migration_ms = cluster_.network().transfer_ms(bytes);
    // Registration is atomic with the first-result-wins bookkeeping: if the
    // original's result was already accounted (possibly still sitting
    // uncollected in the result queue), a replica would be delivered twice —
    // skip it and stand down on this task.
    if (!coordinator_.try_register_replica(target, replica)) {
      record.speculated = true;
      continue;
    }
    if (!cluster_.submit(target, replica)) {
      // Cluster shut down between registration and submit: unwind the
      // registration so the phantom replica cannot pin `outstanding` (and
      // with it the deadlock guard and the history-GC bound) forever.
      coordinator_.on_dispatch_aborted(target, replica);
      break;
    }
    if (presumed_lost) {
      // Replacement registered FIRST, lost copy written off SECOND: the
      // identity holds a registered copy throughout, so a concurrent late
      // arrival can never retire the entry mid-rescue. try_write_off
      // returning false means the "lost" result landed after all — then
      // both copies are genuine and first-result-wins settles it.
      (void)coordinator_.try_write_off(record.worker, record.spec);
      record.spec = replica;
      record.worker = target;
      record.dispatched_at = support::Clock::now();
      record.queue_ahead = std::max(0, coordinator_.outstanding(target) - 1);
      record.speculated = false;  // the rescue gets a full horizon of its own
    } else {
      record.speculated = true;
    }
    free[static_cast<std::size_t>(target)] -= 1;
    cluster_.metrics().tasks_speculated.add(1);
    cluster_.metrics().migration_bytes.add(bytes);
    ++speculations_;
    ++launched;
  }
  return launched;
}

void AsyncScheduler::resubmit(const engine::TaskResult& failed,
                              const TaskFactory& factory) {
  // Next *dispatchable* worker after the failed one: a retry must never land
  // back on a crashed worker (it would bounce forever and burn the retry
  // budget). Falls back to the failed worker itself only when it is the sole
  // survivor of the hop scan.
  std::vector<engine::WorkerId> candidates;
  for (int hop = 1; hop <= cluster_.num_workers(); ++hop) {
    const engine::WorkerId candidate =
        (failed.worker + hop) % cluster_.num_workers();
    if (dispatchable(candidate)) candidates.push_back(candidate);
  }
  if (candidates.empty()) candidates.push_back((failed.worker + 1) % cluster_.num_workers());
  for (const engine::WorkerId target : candidates) {
    engine::TaskSpec spec = factory(failed.partition);
    spec.id = cluster_.next_task_id();
    spec.seq = failed.seq;  // keep the round: the retry recomputes the same batch
    // The partition is still marked busy from its original dispatch.
    coordinator_.on_task_dispatch(target, spec);
    if (cluster_.submit(target, spec)) {
      if (failed.partition >= 0 && failed.partition < num_partitions_) {
        auto& record = inflight_[static_cast<std::size_t>(failed.partition)];
        record.spec = std::move(spec);
        record.dispatched_at = support::Clock::now();
        record.worker = target;
        record.queue_ahead = std::max(0, coordinator_.outstanding(target) - 1);
        record.speculated = false;
        record.valid = true;
      }
      return;
    }
    // Submit rejected: unwind and try the next candidate.
    coordinator_.on_dispatch_aborted(target, spec);
  }
  // Every candidate rejected the retry. Free the partition so a later
  // dispatch pass can reschedule it instead of leaving it busy forever.
  if (failed.partition >= 0 && failed.partition < num_partitions_ &&
      busy_[static_cast<std::size_t>(failed.partition)]) {
    busy_[static_cast<std::size_t>(failed.partition)] = false;
    --busy_count_;
    inflight_[static_cast<std::size_t>(failed.partition)].valid = false;
  }
}

void AsyncScheduler::on_result_collected(engine::PartitionId partition) {
  if (partition < 0 || partition >= num_partitions_) return;
  if (busy_[static_cast<std::size_t>(partition)]) {
    busy_[static_cast<std::size_t>(partition)] = false;
    busy_count_ -= 1;
    inflight_[static_cast<std::size_t>(partition)].valid = false;
  }
}

}  // namespace asyncml::core
