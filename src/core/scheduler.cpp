#include "core/scheduler.hpp"

#include "data/partition.hpp"

namespace asyncml::core {

AsyncScheduler::AsyncScheduler(engine::Cluster& cluster, Coordinator& coordinator)
    : cluster_(cluster), coordinator_(coordinator) {
  owned_.resize(static_cast<std::size_t>(cluster.num_workers()));
}

void AsyncScheduler::set_num_partitions(int num_partitions) {
  num_partitions_ = num_partitions;
  busy_.assign(static_cast<std::size_t>(num_partitions), false);
  busy_count_ = 0;
  for (int w = 0; w < cluster_.num_workers(); ++w) {
    owned_[static_cast<std::size_t>(w)] =
        data::partitions_of_worker(w, num_partitions, cluster_.num_workers());
  }
  cursor_.assign(static_cast<std::size_t>(cluster_.num_workers()), 0);
}

int AsyncScheduler::dispatch_partitions(engine::WorkerId worker,
                                        const TaskFactory& factory, std::uint64_t seq,
                                        int budget) {
  const auto& partitions = owned_[static_cast<std::size_t>(worker)];
  if (partitions.empty() || budget == 0) return 0;

  // Round-robin over the worker's partitions (starting at the cursor) so a
  // capacity-limited worker cycles through ALL its data rather than
  // refilling the same freshly-freed partition forever. The scan base is
  // fixed for the whole loop; the cursor advances past the last dispatch.
  std::size_t& cursor = cursor_[static_cast<std::size_t>(worker)];
  const std::size_t start = cursor;
  std::vector<engine::TaskSpec> specs;
  engine::Version version = 0;
  for (std::size_t scanned = 0; scanned < partitions.size(); ++scanned) {
    if (budget >= 0 && static_cast<int>(specs.size()) >= budget) break;
    const engine::PartitionId p = partitions[(start + scanned) % partitions.size()];
    if (busy_[static_cast<std::size_t>(p)]) continue;
    engine::TaskSpec spec = factory(p);
    spec.id = cluster_.next_task_id();
    spec.seq = seq;
    version = spec.model_version;
    busy_[static_cast<std::size_t>(p)] = true;
    ++busy_count_;
    specs.push_back(std::move(spec));
    cursor = (start + scanned + 1) % partitions.size();
  }
  if (specs.empty()) return 0;
  // Mark outstanding *before* submitting so the coordinator never observes a
  // result for a task it does not know about.
  coordinator_.on_dispatch(worker, static_cast<int>(specs.size()), version);
  for (engine::TaskSpec& spec : specs) cluster_.submit(worker, std::move(spec));
  return static_cast<int>(specs.size());
}

int AsyncScheduler::dispatch_worker(engine::WorkerId worker, const TaskFactory& factory) {
  const int cores = cluster_.config().cores_per_worker;
  return dispatch_partitions(worker, factory, ++round_, cores);
}

int AsyncScheduler::dispatch_eligible(const BarrierControl& barrier,
                                      const TaskFactory& factory) {
  const StatSnapshot stat = coordinator_.stat();
  if (!barrier.gate(stat)) return 0;
  const int cores = cluster_.config().cores_per_worker;
  // All tasks admitted by one dispatch call share one round sequence: they
  // are peers of the same logical iteration (partition ids already separate
  // their sampling streams).
  const std::uint64_t seq = round_ + 1;
  int submitted = 0;
  for (const WorkerStat& w : stat.workers) {
    const int free = cores - w.outstanding;
    if (free <= 0) continue;
    if (!barrier.filter(w, stat)) continue;
    submitted += dispatch_partitions(w.id, factory, seq, free);
  }
  if (submitted > 0) round_ = seq;
  return submitted;
}

int AsyncScheduler::dispatch_all(const TaskFactory& factory) {
  const std::uint64_t seq = ++round_;
  int submitted = 0;
  for (int w = 0; w < cluster_.num_workers(); ++w) {
    submitted += dispatch_partitions(w, factory, seq, /*budget=*/-1);
  }
  return submitted;
}

void AsyncScheduler::resubmit(const engine::TaskResult& failed,
                              const TaskFactory& factory) {
  const engine::WorkerId target = (failed.worker + 1) % cluster_.num_workers();
  engine::TaskSpec spec = factory(failed.partition);
  spec.id = cluster_.next_task_id();
  spec.seq = failed.seq;  // keep the round: the retry recomputes the same batch
  // The partition is still marked busy from its original dispatch.
  coordinator_.on_dispatch(target, 1, spec.model_version);
  cluster_.submit(target, std::move(spec));
}

void AsyncScheduler::on_result_collected(engine::PartitionId partition) {
  if (partition < 0 || partition >= num_partitions_) return;
  if (busy_[static_cast<std::size_t>(partition)]) {
    busy_[static_cast<std::size_t>(partition)] = false;
    --busy_count_;
  }
}

}  // namespace asyncml::core
