#include "core/async_context.hpp"

namespace asyncml::core {

AsyncContext::AsyncContext(engine::Cluster& cluster, int num_partitions,
                           store::StoreConfig store_config)
    : cluster_(cluster),
      coordinator_(cluster),
      scheduler_(cluster, coordinator_),
      registry_(std::make_shared<HistoryRegistry>(&cluster.store(), store_config)) {
  // Size the per-shard byte accounting before any dispatch can count into it.
  if (store_config.num_shards > 1) {
    cluster.metrics().set_num_shards(store_config.num_shards);
  }
  // Workers with a kJoinWorker fault event start outside the member set:
  // they own no partitions and receive no dispatch until poll_membership
  // admits them at their join version (engine/fault.hpp).
  if (auto* faults = cluster.faults(); faults != nullptr) {
    std::vector<bool> members(static_cast<std::size_t>(cluster.num_workers()), true);
    bool any_dormant = false;
    for (int w = 0; w < cluster.num_workers(); ++w) {
      if (faults->starts_dormant(w)) {
        members[static_cast<std::size_t>(w)] = false;
        any_dormant = true;
      }
    }
    if (any_dormant) scheduler_.set_members(std::move(members));
  }
  scheduler_.set_num_partitions(num_partitions);
  // Route the disk tier's counters/fault seams into this run before the
  // first publish can lazily open it. No-op while the tier stays disabled.
  registry_->sharded_store().set_disk_hooks(&cluster.metrics().disk,
                                            cluster.faults());
  coordinator_.start();
}

AsyncContext::~AsyncContext() { coordinator_.stop(); }

void AsyncContext::restore(engine::Version version, std::uint64_t round) {
  coordinator_.restore_version(version);
  scheduler_.resume_round(round);
  if (registry_->sharded_store().config().disk.enabled) {
    if (support::Status s = registry_->sharded_store().restore_from_disk(version);
        !s.is_ok()) {
      std::fprintf(stderr,
                   "AsyncContext::restore: disk tier resume failed: %s\n",
                   s.to_string().c_str());
      std::abort();
    }
  }
}

std::optional<TaggedResult> AsyncContext::collect(
    const AsyncScheduler::TaskFactory* retry_factory) {
  using namespace std::chrono_literals;
  int idle_ms = 0;
  for (;;) {
    // Membership and speculation ride the collect loop: this is the driver's
    // only resident spot, and it is exactly where a BSP-style round sits
    // blocked on a straggler (or a crashed worker's never-arriving result).
    poll_membership();
    scheduler_.maybe_speculate();

    // Failures are routed to their own queue; poll it so a failed task does
    // not leave us blocked waiting for a result that will never come.
    while (auto failed = coordinator_.try_collect_failure()) {
      if (retry_factory == nullptr) {
        std::fprintf(stderr,
                     "AsyncContext::collect: task failed with no retry factory: %s\n",
                     failed->status.to_string().c_str());
        std::abort();
      }
      if (++retries_ > max_retries_total_) {
        std::fprintf(stderr, "AsyncContext::collect: retry budget exhausted\n");
        std::abort();
      }
      scheduler_.resubmit(*failed, *retry_factory);
    }
    auto collected = coordinator_.collect_for(2ms);
    if (collected.has_value()) {
      scheduler_.on_result_collected(collected->result.partition);
      // Anchor for the driver-side accumulate segment: everything between
      // this return and the next publish is solver accumulation work.
      if (cluster_.telemetry().enabled()) {
        last_collect_return_ = support::Clock::now();
      }
      return collected;
    }
    if (!coordinator_.has_next() && coordinator_.stopped()) return std::nullopt;

    // Deadlock guard: nothing queued, nothing in flight, and nothing arriving
    // means no dispatch will ever reopen — a barrier configured so that its
    // gate can never pass again. Fail loudly instead of hanging.
    if (coordinator_.total_outstanding() == 0 && !coordinator_.has_next()) {
      idle_ms += 2;
      if (idle_ms > 2000) {
        std::fprintf(stderr,
                     "AsyncContext::collect: no tasks in flight and no results for 2s "
                     "— barrier gate wedged shut? (%s)\n",
                     coordinator_.stat().to_string().c_str());
        std::abort();
      }
    } else {
      idle_ms = 0;
    }
  }
}

void AsyncContext::poll_membership() {
  // Joins are FaultPlan-driven, but deaths are not: a worker can die for
  // real (the transport's wire process SIGKILLed or disconnected) on a run
  // with no fault plan at all, and its partitions must still fail over.
  auto* faults = cluster_.faults();
  for (int w = 0; w < cluster_.num_workers(); ++w) {
    if (!scheduler_.is_member(w)) {
      // Dormant worker: admit once the model version reaches its join point
      // (it must still be alive — a crash event can precede the join).
      if (faults == nullptr) continue;
      const auto join = faults->join_version(w);
      if (join.has_value() && coordinator_.current_version() >= *join &&
          cluster_.worker_alive(w)) {
        scheduler_.admit_worker(w);
      }
    } else if (!cluster_.worker_alive(w)) {
      scheduler_.handle_worker_death(w);
    }
  }
  // A joiner admitted while partitions were busy is still below its fair
  // share; keep topping it up as results free partitions.
  scheduler_.rebalance_joiners();
}

HistoryBroadcast AsyncContext::async_broadcast(const linalg::DenseVector& w) {
  const engine::Version version = coordinator_.current_version();
  auto& recorder = cluster_.telemetry();
  if (!recorder.enabled()) {
    registry_->publish(w, version);
    return HistoryBroadcast(registry_, version);
  }
  // Driver-side segments, one observation per update: accumulate = collect
  // return -> publish start (the solver's apply/step work), then the publish
  // itself as broadcast-publish.
  const support::TimePoint publish_start = support::Clock::now();
  if (last_collect_return_.time_since_epoch().count() != 0 &&
      publish_start > last_collect_return_) {
    recorder.charge_driver(
        telemetry::Stage::kAccumulate,
        static_cast<std::uint64_t>(
            (publish_start - last_collect_return_).count()));
    last_collect_return_ = support::TimePoint{};
  }
  registry_->publish(w, version);
  recorder.charge_driver(
      telemetry::Stage::kBroadcastPublish,
      static_cast<std::uint64_t>(
          (support::Clock::now() - publish_start).count()));
  recorder.note_update();
  return HistoryBroadcast(registry_, version);
}

}  // namespace asyncml::core
