#include "core/async_context.hpp"

namespace asyncml::core {

AsyncContext::AsyncContext(engine::Cluster& cluster, int num_partitions,
                           store::StoreConfig store_config)
    : cluster_(cluster),
      coordinator_(cluster),
      scheduler_(cluster, coordinator_),
      registry_(std::make_shared<HistoryRegistry>(&cluster.store(), store_config)) {
  scheduler_.set_num_partitions(num_partitions);
  coordinator_.start();
}

AsyncContext::~AsyncContext() { coordinator_.stop(); }

std::optional<TaggedResult> AsyncContext::collect(
    const AsyncScheduler::TaskFactory* retry_factory) {
  using namespace std::chrono_literals;
  int idle_ms = 0;
  for (;;) {
    // Speculation rides the collect loop: this is the driver's only resident
    // spot, and it is exactly where a BSP-style round sits blocked on a
    // straggler. No-op unless SchedulerPolicy::speculation_factor > 0.
    scheduler_.maybe_speculate();

    // Failures are routed to their own queue; poll it so a failed task does
    // not leave us blocked waiting for a result that will never come.
    while (auto failed = coordinator_.try_collect_failure()) {
      if (retry_factory == nullptr) {
        std::fprintf(stderr,
                     "AsyncContext::collect: task failed with no retry factory: %s\n",
                     failed->status.to_string().c_str());
        std::abort();
      }
      if (++retries_ > max_retries_total_) {
        std::fprintf(stderr, "AsyncContext::collect: retry budget exhausted\n");
        std::abort();
      }
      scheduler_.resubmit(*failed, *retry_factory);
    }
    auto collected = coordinator_.collect_for(2ms);
    if (collected.has_value()) {
      scheduler_.on_result_collected(collected->result.partition);
      return collected;
    }
    if (!coordinator_.has_next() && coordinator_.stopped()) return std::nullopt;

    // Deadlock guard: nothing queued, nothing in flight, and nothing arriving
    // means no dispatch will ever reopen — a barrier configured so that its
    // gate can never pass again. Fail loudly instead of hanging.
    if (coordinator_.total_outstanding() == 0 && !coordinator_.has_next()) {
      idle_ms += 2;
      if (idle_ms > 2000) {
        std::fprintf(stderr,
                     "AsyncContext::collect: no tasks in flight and no results for 2s "
                     "— barrier gate wedged shut? (%s)\n",
                     coordinator_.stat().to_string().c_str());
        std::abort();
      }
    } else {
      idle_ms = 0;
    }
  }
}

HistoryBroadcast AsyncContext::async_broadcast(const linalg::DenseVector& w) {
  const engine::Version version = coordinator_.current_version();
  registry_->publish(w, version);
  return HistoryBroadcast(registry_, version);
}

}  // namespace asyncml::core
