#include "core/barrier.hpp"

#include <cmath>

#include <memory>

#include "support/rng.hpp"

namespace asyncml::core::barriers {

BarrierControl asp() {
  BarrierControl b;
  b.name = "ASP";
  return b;  // default gate/filter: always true
}

BarrierControl bsp() {
  BarrierControl b;
  b.name = "BSP";
  b.gate = [](const StatSnapshot& stat) {
    return stat.available_workers() == stat.num_workers();
  };
  return b;
}

BarrierControl ssp(std::uint64_t bound) {
  BarrierControl b;
  b.name = "SSP(" + std::to_string(bound) + ")";
  b.gate = [bound](const StatSnapshot& stat) { return stat.max_staleness() < bound; };
  return b;
}

BarrierControl available_fraction(double beta) {
  BarrierControl b;
  b.name = "beta(" + std::to_string(beta) + ")";
  b.gate = [beta](const StatSnapshot& stat) {
    const int needed =
        static_cast<int>(std::floor(beta * static_cast<double>(stat.num_workers())));
    return stat.available_workers() >= std::max(1, needed);
  };
  return b;
}

BarrierControl completion_time_within(double ratio) {
  BarrierControl b;
  b.name = "ctime(" + std::to_string(ratio) + ")";
  b.filter = [ratio](const WorkerStat& w, const StatSnapshot& stat) {
    if (w.tasks_completed == 0) return true;
    const double cluster_mean = stat.mean_avg_task_ms();
    if (cluster_mean <= 0.0) return true;
    return w.avg_task_ms <= ratio * cluster_mean;
  };
  return b;
}

BarrierControl median_completion_within(double ratio) {
  BarrierControl b;
  b.name = "ctime-med(" + std::to_string(ratio) + ")";
  b.filter = [ratio](const WorkerStat& w, const StatSnapshot& stat) {
    if (w.tasks_completed == 0) return true;
    const double cluster_median = stat.median_avg_task_ms();
    if (cluster_median <= 0.0) return true;
    return w.avg_task_ms <= ratio * cluster_median;
  };
  return b;
}

BarrierControl probabilistic(double p, std::uint64_t seed) {
  BarrierControl b;
  b.name = "PSP(" + std::to_string(p) + ")";
  // Coins come from one seeded stream consumed per filter evaluation, so
  // repeated dispatch attempts draw *fresh* coins — keying on the model
  // version instead would freeze the coins while the cluster is idle and
  // could wedge dispatch permanently. Barrier evaluation happens on the
  // driver thread only, so the shared stream needs no lock.
  auto rng = std::make_shared<support::RngStream>(seed);
  b.filter = [p, rng](const WorkerStat&, const StatSnapshot&) {
    return rng->bernoulli(p);
  };
  return b;
}

BarrierControl both(BarrierControl a, BarrierControl b) {
  BarrierControl out;
  out.name = a.name + "+" + b.name;
  out.gate = [ga = std::move(a.gate), gb = std::move(b.gate)](const StatSnapshot& s) {
    return ga(s) && gb(s);
  };
  out.filter = [fa = std::move(a.filter),
                fb = std::move(b.filter)](const WorkerStat& w, const StatSnapshot& s) {
    return fa(w, s) && fb(w, s);
  };
  return out;
}

}  // namespace asyncml::core::barriers
