#pragma once

// The ASYNCbroadcaster (paper §4.3): history-aware broadcast.
//
// Variance-reduced methods (SAGA/ASAGA) need the model parameters of *past*
// iterations to recompute historical gradients.  Broadcasting the full table
// of past parameters every iteration — what plain Spark forces (Algorithm 3,
// red line) — costs O(iterations × d) per round.  The ASYNCbroadcaster
// instead assigns every published model a version, ships only the (id,
// version) pair with each task, and lets workers fetch values they have not
// yet cached; a worker that already holds version v pays nothing to read it
// again.  The `value(index)` call of Algorithm 4 resolves, through the
// worker-local SampleVersionTable, to "the model as it was when sample
// `index` was last used".
//
// Publishing and resolution are delegated to the delta-versioned ModelStore
// (src/store/): a new version ships as a sparse delta against its
// predecessor (8 + 12*nnz wire bytes) instead of a full 8*dim snapshot, and
// a worker materializes version v from its nearest locally cached ancestor,
// fetching only the missing chain links.  HistoryRegistry remains the
// version-keyed facade the solvers and the AsyncContext talk to; the
// HistoryBroadcast handle is what task closures capture (the `w_br` of
// Algorithm 4).

#include <atomic>
#include <memory>
#include <optional>
#include <vector>

#include "core/shard_map.hpp"
#include "engine/broadcast.hpp"
#include "engine/types.hpp"
#include "linalg/dense_vector.hpp"
#include "store/sharded_store.hpp"

namespace asyncml::core {

class HistoryRegistry {
 public:
  explicit HistoryRegistry(engine::BroadcastStore* broadcasts,
                           store::StoreConfig config = {})
      : store_(broadcasts, config) {}

  /// Publishes `w` as the model at `version` (sparse delta or base snapshot,
  /// per the store's policy); returns the broadcast id it registered.
  engine::BroadcastId publish(const linalg::DenseVector& w, engine::Version version);

  /// Broadcast id of a published version (nullopt if unknown/GC'd).
  [[nodiscard]] std::optional<engine::BroadcastId> id_of(engine::Version version) const;

  /// Resolves the model at `version`. On a worker thread this routes through
  /// the worker's VersionedModelCache (materialized hit = free; miss fetches
  /// and charges exactly the missing chain links). Aborts if the version was
  /// never published or was GC'd — a logic error upstream.
  [[nodiscard]] const linalg::DenseVector& value_at(engine::Version version) const;

  /// Masked resolution on a sharded model plane: fills only the shards in
  /// `mask`, so coordinates outside them are unspecified in the returned
  /// vector — callers must read only their support's coordinates (the batch
  /// kernels pass their partition's shard-support set).  Null mask — and any
  /// mask when the plane is unsharded — is a full materialization.
  [[nodiscard]] const linalg::DenseVector& value_at(engine::Version version,
                                                    const ShardSet* mask) const;

  /// Garbage-collects versions older than `min_version` (exact broadcast ids
  /// on the server and in every worker cache; the oldest retained version is
  /// rebased onto a fresh base snapshot when its delta chain crossed the
  /// cut). `min_version` must be a safe bound — see AsyncContext::gc_history.
  void prune_below(engine::Version min_version);

  [[nodiscard]] std::size_t size() const;

  /// Oldest retained version (for prune policies); nullopt when empty.
  [[nodiscard]] std::optional<engine::Version> oldest() const;

  /// The underlying delta-versioned store of shard 0 — with the default
  /// single-shard config this is *the* model store, bit-exact with
  /// pre-sharding builds (chain metadata, publish stats).
  [[nodiscard]] store::ModelStore& model_store() noexcept {
    return store_.shard(0);
  }
  [[nodiscard]] const store::ModelStore& model_store() const noexcept {
    return store_.shard(0);
  }

  /// The sharded model plane itself (per-shard stats, the ShardMap).
  [[nodiscard]] store::ShardedModelStore& sharded_store() noexcept {
    return store_;
  }
  [[nodiscard]] const store::ShardedModelStore& sharded_store() const noexcept {
    return store_;
  }

 private:
  // mutable: value_at() is logically const but materializes into caches.
  mutable store::ShardedModelStore store_;
};

/// Copyable handle pinned to the version that was current at dispatch time —
/// the `w_br` of Algorithms 2 and 4.
class HistoryBroadcast {
 public:
  HistoryBroadcast() = default;
  HistoryBroadcast(std::shared_ptr<const HistoryRegistry> registry,
                   engine::Version pinned)
      : registry_(std::move(registry)), pinned_(pinned) {}

  [[nodiscard]] bool valid() const noexcept { return registry_ != nullptr; }
  [[nodiscard]] engine::Version version() const noexcept { return pinned_; }

  /// The model this task was dispatched against (`w_br.value`).
  [[nodiscard]] const linalg::DenseVector& value() const {
    return registry_->value_at(pinned_);
  }

  /// A historical model (`w_br.value(index)` resolves the sample's version
  /// through the SampleVersionTable first, then calls this).
  [[nodiscard]] const linalg::DenseVector& value_at(engine::Version v) const {
    return registry_->value_at(v);
  }

  /// Masked reads on a sharded model plane (see HistoryRegistry::value_at):
  /// only coordinates in `mask`'s shards are defined in the result.
  [[nodiscard]] const linalg::DenseVector& value(const ShardSet* mask) const {
    return registry_->value_at(pinned_, mask);
  }
  [[nodiscard]] const linalg::DenseVector& value_at(engine::Version v,
                                                    const ShardSet* mask) const {
    return registry_->value_at(v, mask);
  }

 private:
  std::shared_ptr<const HistoryRegistry> registry_;
  engine::Version pinned_ = 0;
};

/// Sentinel for "sample never visited": its historical gradient is the zero
/// vector (SAGA with an uninitialized table; ᾱ starts at 0 consistently).
/// Lives beside SampleVersionTable because every consumer of the table —
/// the per-row seq ops and the fused batch bodies alike — branches on it.
inline constexpr engine::Version kNeverVisited = ~engine::Version{0};

/// Worker-local "last version used per sample" table — the bookkeeping that
/// lets ASAGA recompute historical gradients instead of storing them.
///
/// Concurrency contract: entry i is only *written* by the task currently
/// processing the partition that owns sample i (the scheduler never runs two
/// tasks of one partition concurrently; cross-worker visibility after a
/// retry is established by the result-queue handoff).  Entries are relaxed
/// atomics because the driver's history GC scans min_version() concurrently
/// with task updates; entries only ever increase, so a concurrent scan can
/// only under-estimate the minimum — which keeps the GC bound conservative.
class SampleVersionTable {
 public:
  explicit SampleVersionTable(std::size_t n, engine::Version init = 0)
      : versions_(n) {
    for (auto& v : versions_) v.store(init, std::memory_order_relaxed);
  }

  [[nodiscard]] engine::Version get(std::size_t i) const {
    return versions_.at(i).load(std::memory_order_relaxed);
  }
  void set(std::size_t i, engine::Version v) {
    versions_.at(i).store(v, std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t size() const noexcept { return versions_.size(); }

  /// Smallest version still referenced — safe lower bound for pruning.
  [[nodiscard]] engine::Version min_version() const;

 private:
  std::vector<std::atomic<engine::Version>> versions_;
};

}  // namespace asyncml::core
