#pragma once

// The ASYNCbroadcaster (paper §4.3): history-aware broadcast.
//
// Variance-reduced methods (SAGA/ASAGA) need the model parameters of *past*
// iterations to recompute historical gradients.  Broadcasting the full table
// of past parameters every iteration — what plain Spark forces (Algorithm 3,
// red line) — costs O(iterations × d) per round.  The ASYNCbroadcaster
// instead assigns every published model a version, ships only the (id,
// version) pair with each task, and lets workers fetch values they have not
// yet cached; a worker that already holds version v pays nothing to read it
// again.  The `value(index)` call of Algorithm 4 resolves, through the
// worker-local SampleVersionTable, to "the model as it was when sample
// `index` was last used".
//
// HistoryRegistry is the server-side version→broadcast-id map; the
// HistoryBroadcast handle is what task closures capture (the `w_br` of
// Algorithm 4).  Value resolution reuses the engine's Broadcast<T> routing,
// so worker-side reads go through the worker's cache with fetch-through
// charging.

#include <map>
#include <memory>
#include <mutex>
#include <optional>

#include "engine/broadcast.hpp"
#include "engine/types.hpp"
#include "linalg/dense_vector.hpp"

namespace asyncml::core {

class HistoryRegistry {
 public:
  explicit HistoryRegistry(engine::BroadcastStore* store) : store_(store) {}

  /// Publishes `w` as the model at `version`; returns the broadcast id.
  engine::BroadcastId publish(linalg::DenseVector w, engine::Version version);

  /// Broadcast id of a published version (nullopt if unknown/pruned).
  [[nodiscard]] std::optional<engine::BroadcastId> id_of(engine::Version version) const;

  /// Resolves the model at `version`. On a worker thread this routes through
  /// the worker's broadcast cache (cache hit = free; miss = charged fetch).
  /// Aborts if the version was never published — a logic error upstream.
  [[nodiscard]] const linalg::DenseVector& value_at(engine::Version version) const;

  /// Drops versions older than `min_version` from the server store.
  /// Workers prune their caches lazily via Worker::cache().prune_below.
  void prune_below(engine::Version min_version);

  [[nodiscard]] std::size_t size() const;

  /// Oldest retained version (for prune policies); nullopt when empty.
  [[nodiscard]] std::optional<engine::Version> oldest() const;

 private:
  engine::BroadcastStore* store_;
  mutable std::mutex mutex_;
  std::map<engine::Version, engine::BroadcastId> ids_;
};

/// Copyable handle pinned to the version that was current at dispatch time —
/// the `w_br` of Algorithms 2 and 4.
class HistoryBroadcast {
 public:
  HistoryBroadcast() = default;
  HistoryBroadcast(std::shared_ptr<const HistoryRegistry> registry,
                   engine::Version pinned)
      : registry_(std::move(registry)), pinned_(pinned) {}

  [[nodiscard]] bool valid() const noexcept { return registry_ != nullptr; }
  [[nodiscard]] engine::Version version() const noexcept { return pinned_; }

  /// The model this task was dispatched against (`w_br.value`).
  [[nodiscard]] const linalg::DenseVector& value() const {
    return registry_->value_at(pinned_);
  }

  /// A historical model (`w_br.value(index)` resolves the sample's version
  /// through the SampleVersionTable first, then calls this).
  [[nodiscard]] const linalg::DenseVector& value_at(engine::Version v) const {
    return registry_->value_at(v);
  }

 private:
  std::shared_ptr<const HistoryRegistry> registry_;
  engine::Version pinned_ = 0;
};

/// Worker-local "last version used per sample" table — the bookkeeping that
/// lets ASAGA recompute historical gradients instead of storing them.
///
/// Concurrency contract: entry i is only read/written by the task currently
/// processing the partition that owns sample i, and the scheduler never runs
/// two tasks of one partition concurrently; cross-worker visibility after a
/// retry is established by the result-queue handoff.
class SampleVersionTable {
 public:
  explicit SampleVersionTable(std::size_t n, engine::Version init = 0)
      : versions_(n, init) {}

  [[nodiscard]] engine::Version get(std::size_t i) const { return versions_.at(i); }
  void set(std::size_t i, engine::Version v) { versions_.at(i) = v; }
  [[nodiscard]] std::size_t size() const noexcept { return versions_.size(); }

  /// Smallest version still referenced — safe lower bound for pruning.
  [[nodiscard]] engine::Version min_version() const;

 private:
  std::vector<engine::Version> versions_;
};

}  // namespace asyncml::core
