#pragma once

// AsynchronousContext (AC) — the entry point of ASYNC (paper §5.1).
//
// Created once per application, the AC wires together the three components:
// the ASYNCcoordinator (result tagging + STAT), the ASYNCbroadcaster
// (history-aware broadcast), and the ASYNCscheduler (barrier-controlled
// dispatch).  The paper's Table-1 API maps as follows:
//
//   paper                          this class
//   ---------------------------    -----------------------------------------
//   AC = new ASYNCcontext          AsyncContext ac(cluster, partitions)
//   ASYNCreduce(f, AC)             ac.async_reduce(rdd, op, barrier, opts)
//   ASYNCaggregate(zero)(seq,comb) ac.async_aggregate(rdd, zero, seq, ...)
//   ASYNCbarrier(f, AC.STAT)       the BarrierControl passed to dispatch
//   ASYNCcollect()                 ac.collect(...).result.payload
//   ASYNCcollectAll()              ac.collect(...) (TaggedResult: + attrs)
//   ASYNCbroadcast(w)              ac.async_broadcast(w) -> HistoryBroadcast
//   AC.STAT                        ac.stat()
//   AC.hasNext()                   ac.has_next()
//
// ASYNCbarrier is a *dispatch-side* predicate here rather than an RDD
// transformation: semantically identical (it decides which workers receive
// tasks built from the RDD), but it lives with the scheduler because that is
// where our engine makes placement decisions.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>

#include "core/barrier.hpp"
#include "core/coordinator.hpp"
#include "core/history.hpp"
#include "core/scheduler.hpp"
#include "engine/actions.hpp"
#include "engine/cluster.hpp"
#include "engine/rdd.hpp"

namespace asyncml::core {

/// Per-dispatch knobs a solver chooses.
struct SubmitOptions {
  /// Base service time per task in ms (straggler multipliers apply on top).
  double service_floor_ms = 0.0;
  /// Experiment seed for mini-batch sampling.
  std::uint64_t rng_seed = 1;
  /// Version tag for dispatched tasks; nullopt = the version current at
  /// dispatch time (the right choice for asynchronous algorithms).
  std::optional<engine::Version> model_version;
};

class AsyncContext {
 public:
  /// `store_config` tunes the delta-versioned model store behind
  /// ASYNCbroadcast (delta vs full-snapshot publishing, base cadence).
  AsyncContext(engine::Cluster& cluster, int num_partitions,
               store::StoreConfig store_config = {});
  ~AsyncContext();

  AsyncContext(const AsyncContext&) = delete;
  AsyncContext& operator=(const AsyncContext&) = delete;

  // -- bookkeeping (AC.STAT / AC.hasNext) ------------------------------------

  [[nodiscard]] StatSnapshot stat() const { return coordinator_.stat(); }
  [[nodiscard]] bool has_next() const { return coordinator_.has_next(); }
  [[nodiscard]] engine::Version current_version() const {
    return coordinator_.current_version();
  }
  void advance_version() { coordinator_.advance_version(); }

  /// Seeds the version and dispatch-round counters from a checkpoint
  /// (optim/checkpoint.hpp). Call before the first broadcast or dispatch of
  /// a resumed run: tasks pin the model version, and the batch RNG keys on
  /// the round seq — both streams must continue where the interrupted run
  /// stopped, not restart at zero.
  /// When the store's disk tier is enabled this also reopens the tier in
  /// resume mode and anchors the model plane on the manifest (restart without
  /// replay, docs/DURABILITY.md); a tier that cannot be reopened aborts —
  /// silently resuming without the durable state the checkpoint names would
  /// fake a successful durable restore.
  void restore(engine::Version version, std::uint64_t round);

  /// Replaces the total failed-task retry budget (default 10'000). Chaos
  /// runs push far more injected failures through collect() than a healthy
  /// run ever sees; the budget still backstops infinite retry loops.
  void set_max_retries(std::uint64_t budget) { max_retries_total_ = budget; }

  // -- collection (ASYNCcollect / ASYNCcollectAll) ----------------------------

  /// Blocking FIFO collect. If `retry_factory` is non-null, failed tasks
  /// observed while waiting are resubmitted through it (Spark retry
  /// semantics); the retry budget guards against permanently failing tasks.
  [[nodiscard]] std::optional<TaggedResult> collect(
      const AsyncScheduler::TaskFactory* retry_factory = nullptr);

  /// Non-blocking collect.
  [[nodiscard]] std::optional<TaggedResult> try_collect() {
    auto collected = coordinator_.try_collect();
    if (collected.has_value()) {
      scheduler_.on_result_collected(collected->result.partition);
    }
    return collected;
  }

  // -- broadcast (ASYNCbroadcast) ---------------------------------------------

  /// Publishes `w` as the model at the *current* version and returns the
  /// pinned handle tasks should capture.
  [[nodiscard]] HistoryBroadcast async_broadcast(const linalg::DenseVector& w);

  /// Handle pinned to an already-published version.
  [[nodiscard]] HistoryBroadcast handle_for(engine::Version version) const {
    return HistoryBroadcast(registry_, version);
  }

  [[nodiscard]] HistoryRegistry& history() { return *registry_; }

  /// Garbage-collects history the STAT table proves unreachable: versions
  /// below the minimum in-flight dispatch version (no running task can read
  /// an older pinned model).  History-reading solvers pass the extra floor
  /// their bookkeeping requires — ASAGA/SAGA their SampleVersionTable
  /// minimum, epoch VR the current snapshot version.  Returns the bound GC'd
  /// against.
  engine::Version gc_history(
      std::optional<engine::Version> extra_floor = std::nullopt) {
    engine::Version bound = stat().min_inflight_version();
    if (extra_floor.has_value()) bound = std::min(bound, *extra_floor);
    registry_->prune_below(bound);
    return bound;
  }

  // -- task factories and dispatch --------------------------------------------

  /// Builds a factory producing tasks from a prepared per-partition task
  /// function — the entry point of the fused batch gradient bodies
  /// (optim/grad_batch.hpp); the RDD aggregate factory lowers to it.
  [[nodiscard]] AsyncScheduler::TaskFactory make_fn_factory(
      std::shared_ptr<const engine::TaskFn> fn, SubmitOptions options) {
    return [this, fn = std::move(fn), options](engine::PartitionId p) {
      engine::TaskSpec spec;
      spec.partition = p;
      spec.model_version = options.model_version.value_or(coordinator_.current_version());
      spec.fn = fn;
      spec.service_floor_ms = options.service_floor_ms;
      spec.rng_seed = options.rng_seed;
      return spec;
    };
  }

  /// Builds a factory producing aggregate tasks over `rdd` (one per
  /// partition): acc = zero; acc = seq_op(acc, element) per sampled element.
  template <typename T, typename U, typename SeqOp>
  [[nodiscard]] AsyncScheduler::TaskFactory make_aggregate_factory(
      const engine::Rdd<T>& rdd, U zero, SeqOp seq_op, SubmitOptions options) {
    return make_fn_factory(engine::make_aggregate_fn<T, U, SeqOp>(
                               rdd, std::move(zero), std::move(seq_op)),
                           std::move(options));
  }

  /// ASYNCaggregate: dispatch aggregate tasks to workers passing `barrier`.
  /// Returns the number of tasks submitted (0 when the gate is closed).
  template <typename T, typename U, typename SeqOp>
  int async_aggregate(const engine::Rdd<T>& rdd, U zero, SeqOp seq_op,
                      const BarrierControl& barrier, const SubmitOptions& options) {
    const auto factory =
        make_aggregate_factory(rdd, std::move(zero), std::move(seq_op), options);
    return scheduler_.dispatch_eligible(barrier, factory);
  }

  /// ASYNCreduce: aggregate specialization folding elements with `op` from a
  /// provided identity (gradient sums use a zero vector).
  template <typename T, typename Op>
  int async_reduce(const engine::Rdd<T>& rdd, T identity, Op op,
                   const BarrierControl& barrier, const SubmitOptions& options) {
    return async_aggregate(rdd, std::move(identity), std::move(op), barrier, options);
  }

  /// Synchronous round *through* ASYNC (what the paper's synchronous SAGA
  /// does): dispatch one aggregate task per partition to every worker, block
  /// until all results arrive (retrying failures), return them.
  template <typename T, typename U, typename SeqOp>
  [[nodiscard]] std::vector<TaggedResult> sync_round(const engine::Rdd<T>& rdd, U zero,
                                                     SeqOp seq_op,
                                                     const SubmitOptions& options) {
    return sync_round_fn(engine::make_aggregate_fn<T, U, SeqOp>(
                             rdd, std::move(zero), std::move(seq_op)),
                         options);
  }

  /// sync_round over a prepared task function (fused batch bodies).
  [[nodiscard]] std::vector<TaggedResult> sync_round_fn(
      std::shared_ptr<const engine::TaskFn> fn, const SubmitOptions& options) {
    const auto factory = make_fn_factory(std::move(fn), options);
    const int total = scheduler_.dispatch_all(factory);
    std::vector<TaggedResult> out;
    out.reserve(static_cast<std::size_t>(total));
    while (static_cast<int>(out.size()) < total) {
      auto collected = collect(&factory);
      if (!collected.has_value()) break;  // context stopped
      out.push_back(std::move(*collected));
    }
    return out;
  }

  [[nodiscard]] Coordinator& coordinator() { return coordinator_; }
  [[nodiscard]] AsyncScheduler& scheduler() { return scheduler_; }
  [[nodiscard]] engine::Cluster& cluster() { return cluster_; }

  /// Total failed-task retries performed through collect().
  [[nodiscard]] std::uint64_t retries() const noexcept { return retries_; }

 private:
  /// Applies pending membership changes (FaultPlan-driven): admits dormant
  /// workers whose join version has been reached, removes crashed members.
  /// No-op (one branch) when the cluster has no fault plan.
  void poll_membership();

  engine::Cluster& cluster_;
  Coordinator coordinator_;
  AsyncScheduler scheduler_;
  std::shared_ptr<HistoryRegistry> registry_;
  std::uint64_t retries_ = 0;
  std::uint64_t max_retries_total_ = 10'000;
  /// Telemetry anchor for the driver's accumulate segment: the instant the
  /// last successful collect() returned. Epoch = unset (telemetry off, or no
  /// collect yet this update).
  support::TimePoint last_collect_return_{};
};

}  // namespace asyncml::core
