#pragma once

// Sharded model plane: routing feature indices to coordinator shards.
//
// A single coordinator owning the whole model vector caps both model size and
// broadcast fan-out (ROADMAP north star: 10⁸-feature models, >64 workers).
// The ShardMap partitions the feature index space [0, dim) across S shards;
// each shard owns its own delta-versioned ModelStore chain, base-snapshot
// cadence, and GC floor (store/sharded_store.hpp), and sparse workloads fetch
// only the shards their batch-union support touches.
//
// Two schemes (docs/SHARDING.md):
//   kRange — balanced contiguous ranges: base = dim/S coordinates per shard,
//            the dim%S remainder spread over the leftmost shards.  Extract /
//            scatter are memcpys, and GradVector::split_ranges slices
//            gradients along the same bounds, so range sharding is what the
//            tree aggregation path uses.
//   kHash  — strided assignment shard_of(i) = i % S (local index i / S):
//            robust against index-locality skew in the data, at the cost of
//            strided extract/scatter and no range-split tree support.
//
// Determinism: a ShardMap is a pure function of (dim, S, scheme) — the driver
// and every worker derive identical maps, and the per-coordinate placement
// never depends on the data, so sharding can never change which coordinate a
// value lands on (the S=1 bit-exactness argument starts here).

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace asyncml::core {

/// Partitioning scheme over feature indices.
enum class ShardScheme : std::uint8_t { kRange, kHash };

/// Sorted set of shard ids a partition's row-support union touches — the
/// fetch mask of a masked model read (HistoryBroadcast::value(support)).
struct ShardSet {
  std::vector<std::uint32_t> ids;  ///< sorted, unique

  [[nodiscard]] bool empty() const noexcept { return ids.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return ids.size(); }
};

class ShardMap {
 public:
  /// Unsharded identity (dim 0, one shard) — the S=1 reference.
  ShardMap() = default;

  /// `num_shards` is clamped to [1, max(1, dim)]: a shard must own at least
  /// one coordinate.
  ShardMap(std::size_t dim, std::uint32_t num_shards,
           ShardScheme scheme = ShardScheme::kRange);

  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  [[nodiscard]] std::uint32_t num_shards() const noexcept { return num_shards_; }
  [[nodiscard]] ShardScheme scheme() const noexcept { return scheme_; }

  /// Shard owning global coordinate `index`.
  [[nodiscard]] std::uint32_t shard_of(std::uint32_t index) const noexcept {
    assert(index < dim_);
    if (scheme_ == ShardScheme::kHash) return index % num_shards_;
    // Balanced ranges: the first `rem_` shards hold base_+1 coordinates.
    const std::uint32_t wide = rem_ * (base_ + 1);
    return index < wide ? index / (base_ + 1) : rem_ + (index - wide) / base_;
  }

  /// Index of `index` inside its shard's slice.
  [[nodiscard]] std::uint32_t local_of(std::uint32_t index) const noexcept {
    assert(index < dim_);
    if (scheme_ == ShardScheme::kHash) return index / num_shards_;
    return index - bounds_[shard_of(index)];
  }

  /// Inverse of (shard_of, local_of).
  [[nodiscard]] std::uint32_t global_of(std::uint32_t shard,
                                        std::uint32_t local) const noexcept {
    assert(shard < num_shards_);
    if (scheme_ == ShardScheme::kHash) return local * num_shards_ + shard;
    return bounds_[shard] + local;
  }

  /// Number of coordinates shard `shard` owns.
  [[nodiscard]] std::size_t shard_dim(std::uint32_t shard) const noexcept {
    assert(shard < num_shards_);
    if (scheme_ == ShardScheme::kHash) {
      return dim_ / num_shards_ + (shard < dim_ % num_shards_ ? 1 : 0);
    }
    return bounds_[shard + 1] - bounds_[shard];
  }

  /// kRange boundary array [0, b1, …, dim] — what GradVector::split_ranges
  /// and the per-shard slice copies consume.  Empty for kHash.
  [[nodiscard]] const std::vector<std::uint32_t>& range_bounds() const noexcept {
    return bounds_;
  }

  /// Copies shard `shard`'s slice of the full-dim `w` into `slice`
  /// (slice.size() == shard_dim(shard)).
  void extract(std::uint32_t shard, std::span<const double> w,
               std::span<double> slice) const;

  /// Writes shard `shard`'s slice back into the full-dim `w` — the assembly
  /// kernel of masked model materialization.
  void scatter(std::uint32_t shard, std::span<const double> slice,
               std::span<double> w) const;

  /// True when shard `shard`'s slice of `a` and `b` differ anywhere — the
  /// skip-unchanged-shard test of ShardedModelStore::publish.
  [[nodiscard]] bool slice_differs(std::uint32_t shard, std::span<const double> a,
                                   std::span<const double> b) const;

 private:
  std::size_t dim_ = 0;
  std::uint32_t num_shards_ = 1;
  ShardScheme scheme_ = ShardScheme::kRange;
  std::uint32_t base_ = 0;  ///< kRange: dim / S
  std::uint32_t rem_ = 0;   ///< kRange: dim % S (spread over the left shards)
  std::vector<std::uint32_t> bounds_;  ///< kRange: S+1 boundaries
};

}  // namespace asyncml::core
