#pragma once

// The ASYNCcoordinator (paper §4.2).
//
// A dedicated thread drains the cluster's result channel, annotates each task
// result with worker attributes (staleness, mini-batch provenance, worker
// id), maintains the STAT table, and exposes the annotated results in FIFO
// order (ASYNCcollect).  Failed task results are routed to a separate queue
// so the scheduler can resubmit them without disturbing the result FIFO.
//
// The model-parameter version is owned here: the server's solver loop calls
// advance_version() after each update, and staleness of a result is computed
// as (version at collection) − (version the task computed against).

#include <atomic>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "core/stat.hpp"
#include "engine/cluster.hpp"
#include "support/blocking_queue.hpp"
#include "support/ewma.hpp"

namespace asyncml::core {

/// A task result annotated with the worker attributes the paper's
/// ASYNCcollectAll returns.
struct TaggedResult {
  engine::TaskResult result;
  /// Staleness of this result: version at arrival − task's model version.
  std::uint64_t staleness = 0;
  /// Snapshot of the submitting worker's STAT row at arrival.
  WorkerStat worker;
};

class Coordinator {
 public:
  explicit Coordinator(engine::Cluster& cluster);
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Starts the drain thread. Called by AsyncContext's constructor.
  void start();

  /// Stops the drain thread (does not shut the cluster down). Idempotent.
  void stop();

  // -- bookkeeping reads ----------------------------------------------------

  [[nodiscard]] StatSnapshot stat() const;
  [[nodiscard]] engine::Version current_version() const noexcept {
    return version_.load(std::memory_order_acquire);
  }

  /// True if an annotated result is waiting (AC.hasNext()).
  [[nodiscard]] bool has_next() const { return !results_.empty(); }

  /// True once stop() has been called (collect() will not block again).
  [[nodiscard]] bool stopped() const noexcept {
    return !running_.load(std::memory_order_acquire);
  }

  // -- collection ------------------------------------------------------------

  /// FIFO pop of the next annotated result; blocks up to `timeout`.
  [[nodiscard]] std::optional<TaggedResult> collect_for(std::chrono::milliseconds timeout);

  /// Blocking FIFO pop; returns nullopt only when stopped.
  [[nodiscard]] std::optional<TaggedResult> collect();

  /// Non-blocking pop.
  [[nodiscard]] std::optional<TaggedResult> try_collect();

  /// Failed task results (after worker-side retries are exhausted upstream).
  [[nodiscard]] std::optional<engine::TaskResult> try_collect_failure();

  // -- server-side hooks ------------------------------------------------------

  /// Bumps the model version; call after every model update.
  void advance_version() { version_.fetch_add(1, std::memory_order_acq_rel); }

  /// Seeds the version counter from a checkpoint. Call before any dispatch:
  /// tasks pin the version at dispatch time, so a resumed run must start
  /// counting where the interrupted one stopped (optim/checkpoint.hpp).
  void restore_version(engine::Version version) {
    version_.store(version, std::memory_order_release);
  }

  /// Records that `tasks` tasks were dispatched to `worker` against `version`
  /// (called by the scheduler; marks the worker unavailable). Results of
  /// tasks registered this way are always delivered — use on_task_dispatch
  /// when duplicate replicas of a task may be in flight.
  void on_dispatch(engine::WorkerId worker, int tasks, engine::Version version);

  /// Per-task registration: like on_dispatch for one task, but additionally
  /// tracks the task's logical identity (partition, seq). Registering the
  /// same identity again (a speculative replica or a failure retry) arms
  /// first-result-wins semantics: the first OK result for the identity is
  /// delivered, every later one is dropped as a duplicate — safe because a
  /// replica of the same (seed, partition, seq) recomputes the identical
  /// mini-batch, so duplicates are bit-identical.
  void on_task_dispatch(engine::WorkerId worker, const engine::TaskSpec& spec);

  /// Registers a speculative replica of an in-flight task, atomically with
  /// the dedup bookkeeping: succeeds only while the original's identity is
  /// still undelivered. Returns false when the original's result has already
  /// been accounted (it may be sitting uncollected in the result queue) — a
  /// replica dispatched past that point would be delivered a second time.
  [[nodiscard]] bool try_register_replica(engine::WorkerId worker,
                                          const engine::TaskSpec& spec);

  /// Reverses one registration (on_task_dispatch / try_register_replica)
  /// for a task that was never actually submitted — e.g. the cluster shut
  /// down between registration and submit. Without this the phantom task
  /// would pin `outstanding` and the history-GC bound forever.
  void on_dispatch_aborted(engine::WorkerId worker, const engine::TaskSpec& spec);

  /// Writes off a registered copy presumed lost in transit (a dropped result
  /// — see engine/fault.hpp): unwinds its STAT registration like
  /// on_dispatch_aborted, but only if that copy is still unaccounted — false
  /// means its result arrived in the meantime and nothing was changed, so the
  /// caller can never double-unwind in the race against the drain thread.
  /// Should the written-off result surface after all, per-worker dedup drops
  /// it as an excess arrival without touching STAT.
  [[nodiscard]] bool try_write_off(engine::WorkerId worker,
                                   const engine::TaskSpec& spec);

  /// Total tasks in flight across all workers (deadlock diagnostics).
  [[nodiscard]] int total_outstanding() const;

  /// Tasks currently in flight on one worker.
  [[nodiscard]] int outstanding(engine::WorkerId worker) const;

  /// Replica results dropped by first-result-wins dedup (OK duplicates plus
  /// failures of already-delivered tasks, which need no retry).
  [[nodiscard]] std::uint64_t duplicates_dropped() const noexcept {
    return duplicates_dropped_.load(std::memory_order_relaxed);
  }

 private:
  /// Logical identity of a dispatched task: replicas share it, so it keys
  /// the first-result-wins bookkeeping. (partition, seq) is unique per
  /// logical dispatch — the scheduler never re-issues a round sequence for
  /// the same partition.
  using TaskKey = std::pair<engine::PartitionId, std::uint64_t>;
  struct InflightTask {
    /// Unaccounted replicas per worker. Accounting is per (identity, worker):
    /// an at-least-once transport echo from one worker (kDuplicateResult) can
    /// never consume the registration of a replica still running elsewhere —
    /// with a single shared count, a duplicate would burn the entry and the
    /// late replica's arrival would corrupt `outstanding` and be delivered a
    /// second time.
    std::map<engine::WorkerId, int> copies;
    bool delivered = false;  ///< an OK result has already been released
  };

  void drain_loop();
  /// Tags, dedups, and routes one delivered TaskResult (drain_loop body).
  void process_result(engine::TaskResult result);
  void apply_result_locked(const engine::TaskResult& r);
  void register_dispatch_locked(engine::WorkerId worker, int tasks,
                                engine::Version version);
  /// Reverses one register_dispatch_locked slot (STAT half of abort/write-off).
  void unwind_dispatch_locked(engine::WorkerId worker, engine::Version version);
  /// Drops the worker's copy from `it`'s entry; erases the entry when no
  /// copies remain and records the identity in last_accounted_seq_.
  void consume_copy_locked(std::map<TaskKey, InflightTask>::iterator it,
                           engine::WorkerId worker);
  /// Refreshes `row.min_outstanding_version` from the in-flight version
  /// multiset; requires stat_mutex_ held.
  void fill_min_outstanding_locked(WorkerStat& row) const;

  engine::Cluster& cluster_;
  std::atomic<engine::Version> version_{0};

  mutable std::mutex stat_mutex_;
  std::vector<WorkerStat> stats_;
  /// Per-worker versions of tasks currently in flight (one entry per task):
  /// the authoritative source of the history-GC bound. A plain "last
  /// dispatched version" is not enough — a multi-core worker can hold an old
  /// queued task while newer ones are dispatched past it.
  std::vector<std::multiset<engine::Version>> inflight_versions_;
  std::vector<support::Ewma> task_time_ewma_;
  /// First-result-wins bookkeeping for tasks registered per identity
  /// (on_task_dispatch). Entries die when their last replica is accounted
  /// for, so the map stays bounded by the in-flight task count.
  std::map<TaskKey, InflightTask> inflight_tasks_;
  /// Highest fully-accounted seq per partition. An arrival with no inflight
  /// entry and seq at or below this floor was already accounted in full —
  /// an injected duplicate of a retired task, or a written-off copy that
  /// surfaced late — and must be dropped without any STAT bookkeeping.
  std::map<engine::PartitionId, std::uint64_t> last_accounted_seq_;
  std::atomic<std::uint64_t> duplicates_dropped_{0};

  support::BlockingQueue<TaggedResult> results_;
  support::BlockingQueue<engine::TaskResult> failures_;

  std::atomic<bool> running_{false};
  std::jthread drain_thread_;
};

}  // namespace asyncml::core
