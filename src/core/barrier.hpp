#pragma once

// Barrier-control strategies (paper §3, §4.4, Listing 2).
//
// A BarrierControl decides, from the STAT snapshot, (a) whether any dispatch
// may happen this round (the gate) and (b) which of the available workers may
// receive tasks (the filter).  The classic strategies:
//   ASP — always dispatch to whoever is available;
//   BSP — dispatch only when *all* workers are available (bulk-synchronous);
//   SSP — pause dispatch while max worker staleness exceeds a bound s.
// User-defined controls compose arbitrary predicates over STAT, e.g. the
// ⌊β·P⌋ availability fraction of §5.2 or completion-time filters in the
// spirit of adaptive-synchronous strategies [69].

#include <cstdint>
#include <functional>
#include <string>

#include "core/stat.hpp"

namespace asyncml::core {

struct BarrierControl {
  using Gate = std::function<bool(const StatSnapshot&)>;
  using Filter = std::function<bool(const WorkerStat&, const StatSnapshot&)>;

  std::string name = "custom";
  /// Round-level predicate: if false, nothing is dispatched this round.
  Gate gate = [](const StatSnapshot&) { return true; };
  /// Per-worker predicate over *available* workers.
  Filter filter = [](const WorkerStat&, const StatSnapshot&) { return true; };
};

namespace barriers {

/// Asynchronous Parallel: any available worker proceeds immediately.
[[nodiscard]] BarrierControl asp();

/// Bulk Synchronous Parallel: dispatch only when every worker is available.
[[nodiscard]] BarrierControl bsp();

/// Stale Synchronous Parallel: dispatch only while the maximum worker
/// staleness is strictly below `bound`.
[[nodiscard]] BarrierControl ssp(std::uint64_t bound);

/// §5.2's bounded-availability barrier: dispatch only when at least
/// ⌊beta · P⌋ workers are available (beta in (0, 1]).
[[nodiscard]] BarrierControl available_fraction(double beta);

/// Completion-time filter: dispatch only to workers whose EWMA task time is
/// at most `ratio` × the cluster mean (skips chronic stragglers). Workers
/// with no history yet always pass.
[[nodiscard]] BarrierControl completion_time_within(double ratio);

/// Median-anchored completion-time filter: like completion_time_within but
/// compares against the cluster *median* EWMA, which a single long-tail
/// straggler cannot drag upward (the mean version grows more permissive as
/// the straggler gets slower). The natural partner of work stealing: a
/// worker this filter shuns keeps accumulating idle partitions for healthy
/// peers to claim (docs/SCHEDULING.md).
[[nodiscard]] BarrierControl median_completion_within(double ratio);

/// Probabilistic Synchronous Parallel (after Wang et al. [65], which the
/// paper cites among the barrier strategies ASYNC can express): every
/// eligible worker is admitted independently with probability `p` on each
/// dispatch attempt. Reproducible given `seed` (one shared coin stream,
/// consumed in evaluation order on the driver thread).
[[nodiscard]] BarrierControl probabilistic(double p, std::uint64_t seed);

/// Conjunction of two controls (gates AND, filters AND).
[[nodiscard]] BarrierControl both(BarrierControl a, BarrierControl b);

}  // namespace barriers

}  // namespace asyncml::core
