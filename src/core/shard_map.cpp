#include "core/shard_map.hpp"

#include <algorithm>
#include <cstring>

namespace asyncml::core {

ShardMap::ShardMap(std::size_t dim, std::uint32_t num_shards, ShardScheme scheme)
    : dim_(dim),
      num_shards_(std::max<std::uint32_t>(
          1, std::min<std::uint32_t>(
                 num_shards, static_cast<std::uint32_t>(std::max<std::size_t>(
                                 1, std::min<std::size_t>(dim, 0xFFFFFFFFu)))))),
      scheme_(scheme) {
  if (scheme_ == ShardScheme::kHash) return;
  base_ = static_cast<std::uint32_t>(dim_ / num_shards_);
  rem_ = static_cast<std::uint32_t>(dim_ % num_shards_);
  bounds_.resize(num_shards_ + 1);
  bounds_[0] = 0;
  for (std::uint32_t s = 0; s < num_shards_; ++s) {
    bounds_[s + 1] = bounds_[s] + base_ + (s < rem_ ? 1 : 0);
  }
}

void ShardMap::extract(std::uint32_t shard, std::span<const double> w,
                       std::span<double> slice) const {
  assert(shard < num_shards_ && w.size() == dim_ &&
         slice.size() == shard_dim(shard));
  if (scheme_ == ShardScheme::kRange) {
    std::memcpy(slice.data(), w.data() + bounds_[shard],
                slice.size() * sizeof(double));
    return;
  }
  const double* src = w.data() + shard;
  for (std::size_t i = 0; i < slice.size(); ++i) {
    slice[i] = src[i * num_shards_];
  }
}

void ShardMap::scatter(std::uint32_t shard, std::span<const double> slice,
                       std::span<double> w) const {
  assert(shard < num_shards_ && w.size() == dim_ &&
         slice.size() == shard_dim(shard));
  if (scheme_ == ShardScheme::kRange) {
    std::memcpy(w.data() + bounds_[shard], slice.data(),
                slice.size() * sizeof(double));
    return;
  }
  double* dst = w.data() + shard;
  for (std::size_t i = 0; i < slice.size(); ++i) {
    dst[i * num_shards_] = slice[i];
  }
}

bool ShardMap::slice_differs(std::uint32_t shard, std::span<const double> a,
                             std::span<const double> b) const {
  assert(shard < num_shards_ && a.size() == dim_ && b.size() == dim_);
  if (scheme_ == ShardScheme::kRange) {
    // Bitwise comparison on purpose: the delta chain republishes whenever the
    // stored bits change, and 0.0 vs -0.0 are different wire bytes.
    return std::memcmp(a.data() + bounds_[shard], b.data() + bounds_[shard],
                       shard_dim(shard) * sizeof(double)) != 0;
  }
  const std::size_t n = shard_dim(shard);
  const double* pa = a.data() + shard;
  const double* pb = b.data() + shard;
  for (std::size_t i = 0; i < n; ++i) {
    if (std::memcmp(&pa[i * num_shards_], &pb[i * num_shards_],
                    sizeof(double)) != 0) {
      return true;
    }
  }
  return false;
}

}  // namespace asyncml::core
