#include "core/stat.hpp"

#include <algorithm>
#include <sstream>

namespace asyncml::core {

int StatSnapshot::available_workers() const noexcept {
  int n = 0;
  for (const WorkerStat& w : workers) n += w.available ? 1 : 0;
  return n;
}

std::uint64_t StatSnapshot::max_staleness() const noexcept {
  // Only workers with tasks in flight contribute: an idle worker's staleness
  // is reset by the very dispatch the gate is deciding about, so counting it
  // would wedge SSP's gate permanently once the cluster drains.
  std::uint64_t m = 0;
  for (const WorkerStat& w : workers) {
    if (w.ever_dispatched && w.outstanding > 0) m = std::max(m, w.task_staleness);
  }
  return m;
}

engine::Version StatSnapshot::min_inflight_version() const noexcept {
  engine::Version m = current_version;
  for (const WorkerStat& w : workers) {
    if (w.ever_dispatched && w.outstanding > 0) {
      m = std::min(m, w.min_outstanding_version);
    }
  }
  return m;
}

double StatSnapshot::mean_avg_task_ms() const noexcept {
  double sum = 0.0;
  int n = 0;
  for (const WorkerStat& w : workers) {
    if (w.tasks_completed > 0) {
      sum += w.avg_task_ms;
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / n;
}

double StatSnapshot::median_avg_task_ms() const {
  std::vector<double> times;
  times.reserve(workers.size());
  for (const WorkerStat& w : workers) {
    if (w.tasks_completed > 0) times.push_back(w.avg_task_ms);
  }
  if (times.empty()) return 0.0;
  // Lower median for even counts: with the upper middle, a 2-worker cluster
  // would report the straggler's own EWMA as "the cluster median" and every
  // median-anchored mechanism (speculation threshold, median completion
  // filter) would go dormant exactly when half the cluster is slow.
  const std::size_t mid = (times.size() - 1) / 2;
  std::nth_element(times.begin(), times.begin() + static_cast<std::ptrdiff_t>(mid),
                   times.end());
  return times[mid];
}

std::string StatSnapshot::to_string() const {
  std::ostringstream os;
  os << "v" << current_version << " avail=" << available_workers() << "/"
     << num_workers() << " max_stale=" << max_staleness();
  return os.str();
}

}  // namespace asyncml::core
