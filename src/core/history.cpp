#include "core/history.hpp"

#include <algorithm>

#include "store/model_cache.hpp"

namespace asyncml::core {

engine::BroadcastId HistoryRegistry::publish(const linalg::DenseVector& w,
                                             engine::Version version) {
  return store_.publish(w, version);
}

std::optional<engine::BroadcastId> HistoryRegistry::id_of(
    engine::Version version) const {
  return store_.id_of(version);
}

const linalg::DenseVector& HistoryRegistry::value_at(engine::Version version) const {
  // Worker-vs-driver routing (charged worker cache vs free driver cache) and
  // per-shard assembly both live in the sharded store.
  return store_.value_at(version);
}

const linalg::DenseVector& HistoryRegistry::value_at(engine::Version version,
                                                     const ShardSet* mask) const {
  return store_.value_at(version, mask);
}

void HistoryRegistry::prune_below(engine::Version min_version) {
  store_.gc_below(min_version);
}

std::size_t HistoryRegistry::size() const { return store_.size(); }

std::optional<engine::Version> HistoryRegistry::oldest() const {
  return store_.oldest();
}

engine::Version SampleVersionTable::min_version() const {
  engine::Version m = ~engine::Version{0};
  if (versions_.empty()) return 0;
  for (const auto& v : versions_) {
    m = std::min(m, v.load(std::memory_order_relaxed));
  }
  return m;
}

}  // namespace asyncml::core
