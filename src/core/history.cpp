#include "core/history.hpp"

#include <algorithm>

#include "store/model_cache.hpp"

namespace asyncml::core {

engine::BroadcastId HistoryRegistry::publish(const linalg::DenseVector& w,
                                             engine::Version version) {
  return store_.publish(w, version);
}

std::optional<engine::BroadcastId> HistoryRegistry::id_of(
    engine::Version version) const {
  return store_.id_of(version);
}

const linalg::DenseVector& HistoryRegistry::value_at(engine::Version version) const {
  // On a worker thread, resolve through that worker's versioned model cache
  // (materialized hit = free; miss fetches and charges the missing chain
  // links). On the driver, the same resolution runs without charging.
  if (engine::WorkerEnv* env = engine::current_worker_env();
      env != nullptr && env->cache != nullptr) {
    return store_.cache_for(env->id, env->cache, env->metrics).value_at(version);
  }
  return store_.driver_cache().value_at(version);
}

void HistoryRegistry::prune_below(engine::Version min_version) {
  store_.gc_below(min_version);
}

std::size_t HistoryRegistry::size() const { return store_.size(); }

std::optional<engine::Version> HistoryRegistry::oldest() const {
  return store_.oldest();
}

engine::Version SampleVersionTable::min_version() const {
  engine::Version m = ~engine::Version{0};
  if (versions_.empty()) return 0;
  for (const auto& v : versions_) {
    m = std::min(m, v.load(std::memory_order_relaxed));
  }
  return m;
}

}  // namespace asyncml::core
