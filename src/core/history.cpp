#include "core/history.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace asyncml::core {

engine::BroadcastId HistoryRegistry::publish(linalg::DenseVector w,
                                             engine::Version version) {
  const std::size_t bytes = w.size_bytes();
  const engine::BroadcastId id =
      store_->put(engine::Payload::wrap<linalg::DenseVector>(std::move(w), bytes));
  std::lock_guard lock(mutex_);
  ids_[version] = id;
  return id;
}

std::optional<engine::BroadcastId> HistoryRegistry::id_of(
    engine::Version version) const {
  std::lock_guard lock(mutex_);
  const auto it = ids_.find(version);
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

const linalg::DenseVector& HistoryRegistry::value_at(engine::Version version) const {
  const auto id = id_of(version);
  if (!id.has_value()) {
    std::fprintf(stderr, "HistoryRegistry: version %llu was never published or was pruned\n",
                 static_cast<unsigned long long>(version));
    std::abort();
  }
  // Broadcast<T>::value() routes through the worker cache when called from a
  // task, and reads the store directly on the driver. The returned reference
  // is into the shared immutable payload.
  engine::Broadcast<linalg::DenseVector> handle(*id, store_);
  return handle.value();
}

void HistoryRegistry::prune_below(engine::Version min_version) {
  std::lock_guard lock(mutex_);
  for (auto it = ids_.begin(); it != ids_.end() && it->first < min_version;) {
    store_->erase(it->second);
    it = ids_.erase(it);
  }
}

std::size_t HistoryRegistry::size() const {
  std::lock_guard lock(mutex_);
  return ids_.size();
}

std::optional<engine::Version> HistoryRegistry::oldest() const {
  std::lock_guard lock(mutex_);
  if (ids_.empty()) return std::nullopt;
  return ids_.begin()->first;
}

engine::Version SampleVersionTable::min_version() const {
  if (versions_.empty()) return 0;
  return *std::min_element(versions_.begin(), versions_.end());
}

}  // namespace asyncml::core
