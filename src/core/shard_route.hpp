#pragma once

// Tree-structured gradient aggregation through the async path.
//
// The synchronous solvers' driver fold (sort results by partition, add one by
// one) makes the coordinator loop the aggregation hot spot: one thread adds P
// gradients per round while every worker idles.  tree_combine_async runs the
// same reduction as log-depth combine *tasks* dispatched through the live
// AsyncContext — registered with the coordinator (STAT-visible, result-queue
// delivered, failure-retried) instead of the raw run_tasks_sync channel,
// which cannot be used while the coordinator's drain thread owns the result
// queue.
//
// Sharded composition: with a kRange ShardMap, every per-partition gradient
// is first split along the shard bounds (GradVector::split_ranges) and S
// independent trees run over the per-shard pieces — the partial aggregation
// lands shard by shard, mirroring how the scatter into the sharded model
// plane consumes it — and the driver merges the S shard totals back at their
// range offsets.
//
// Determinism (docs/SHARDING.md): groups are formed positionally over the
// partition-ordered inputs with a fixed fanout, and every combine adds in
// group order, so each coordinate's addition sequence is a pure function of
// (P, fanout) — independent of S (a coordinate lives in exactly one shard,
// and that shard's tree groups by the same positions as the S=1 tree) and of
// worker placement.  Tree order differs from the flat driver fold's order, so
// CombineMode::kTree is a distinct — internally consistent — FP trajectory,
// selected per solver run (optim/solver_config.hpp), never silently mixed.

#include <cstdint>
#include <vector>

#include "core/shard_map.hpp"
#include "engine/types.hpp"
#include "linalg/grad_vector.hpp"

namespace asyncml::core {

class AsyncContext;

/// How a synchronous solver folds its per-partition gradients.
enum class CombineMode : std::uint8_t {
  kDriver,  ///< flat driver-side fold in partition order (the reference)
  kTree,    ///< log-depth combine tasks via tree_combine_async
};

struct TreeCombineOptions {
  int fanout = 4;                     ///< combine fan-in per task
  std::uint64_t seq = 0;              ///< dispatch round (task bookkeeping)
  engine::Version model_version = 0;  ///< version tag carried by the tasks
  std::uint64_t rng_seed = 1;
};

/// Reduces `parts` (per-partition gradients in partition order) to their sum
/// with tree-structured combine tasks on the cluster's workers.  `map`
/// selects the sharded composition (kRange maps with more than one shard run
/// one tree per shard; null or single-shard maps run one tree over the full
/// vectors).  Falls back to driver-side folding for groups that cannot be
/// dispatched (no alive members, submit rejection, context shutdown) —
/// bit-identically, since the fold order is positional either way.
///
/// Must not run concurrently with other in-flight tasks of the same context
/// (the sync solvers call it after their round fully collected), like
/// run_tasks_sync.
[[nodiscard]] linalg::GradVector tree_combine_async(
    AsyncContext& ac, std::vector<linalg::GradVector> parts,
    const ShardMap* map, const linalg::GradVectorConfig& total_cfg,
    const TreeCombineOptions& options);

}  // namespace asyncml::core
