#pragma once

// Paper-parity facade: free functions named exactly as the paper's Table 1,
// so code can be transliterated from the paper's listings symbol-for-symbol.
// Each function is a thin forwarder to the AsyncContext method documented in
// core/async_context.hpp; new code should prefer the methods, this header
// exists to make the correspondence executable:
//
//   AC = new ASYNCcontext            AsyncContext ac(cluster, P);
//   points.ASYNCbarrier(f, AC.STAT)
//         .sample(b).map(g)
//         .ASYNCreduce(_+_, AC)      ASYNCreduce(ac, points.sample(b), zero,
//                                                seq_op, f);
//   while (AC.hasNext())             while (ASYNChasNext(ac))
//     grad = AC.ASYNCcollect()         grad = ASYNCcollect(ac);
//   w_br = AC.ASYNCbroadcast(w)      w_br = ASYNCbroadcast(ac, w);
//   AC.STAT                          STAT(ac)
//
// Note the one structural difference (also discussed in async_context.hpp):
// ASYNCbarrier is expressed as the BarrierControl argument of the dispatch
// instead of an RDD transformation, because barrier decisions happen at the
// scheduler in this engine.
//
// Intended usage — an asynchronous solver loop is four calls:
//
//   AsyncContext ac(cluster, partitions);
//   auto w_br = ASYNCbroadcast(ac, w0);                    // publish model
//   ASYNCreduce(ac, points.sample(b), zero, grad_op,
//               barriers::ssp(16));                        // dispatch round
//   while (ASYNChasNext(ac)) {
//     auto r = ASYNCcollectAll(ac);                        // staleness-tagged
//     w -= step(r->staleness) * gradient_of(r->result);    // apply update
//     w_br = ASYNCbroadcast(ac, w);                        // next version
//   }
//
// All functions are thin inline forwarders — there is no behavior here, only
// naming; see AsyncContext for semantics, ownership and thread-safety.

#include "core/async_context.hpp"

namespace asyncml::core {

/// ASYNCreduce: dispatch fold tasks over `rdd` to the workers admitted by
/// `barrier`; results stream into the context (collect with ASYNCcollect).
template <typename T, typename Op>
inline int ASYNCreduce(AsyncContext& ac, const engine::Rdd<T>& rdd, T identity, Op op,
                       const BarrierControl& barrier, const SubmitOptions& options = {}) {
  return ac.async_reduce(rdd, std::move(identity), std::move(op), barrier, options);
}

/// ASYNCaggregate: the zero/seqOp/combOp form (combOp runs server-side when
/// the caller folds collected results; each task applies seqOp only, exactly
/// like Spark's per-partition phase).
template <typename T, typename U, typename SeqOp>
inline int ASYNCaggregate(AsyncContext& ac, const engine::Rdd<T>& rdd, U zero,
                          SeqOp seq_op, const BarrierControl& barrier,
                          const SubmitOptions& options = {}) {
  return ac.async_aggregate(rdd, std::move(zero), std::move(seq_op), barrier, options);
}

/// ASYNCcollect: FIFO pop of the next task result (payload only).
[[nodiscard]] inline std::optional<engine::Payload> ASYNCcollect(AsyncContext& ac) {
  auto collected = ac.collect();
  if (!collected.has_value()) return std::nullopt;
  return std::move(collected->result.payload);
}

/// ASYNCcollectAll: the result plus its worker attributes (index, staleness,
/// mini-batch provenance) — what Listing 1 uses for staleness-aware rates.
[[nodiscard]] inline std::optional<TaggedResult> ASYNCcollectAll(AsyncContext& ac) {
  return ac.collect();
}

/// ASYNCbroadcast: publish a model as a dynamic (history) broadcast variable
/// (shipped as a sparse delta against the previous version when profitable —
/// see src/store/).
[[nodiscard]] inline HistoryBroadcast ASYNCbroadcast(AsyncContext& ac,
                                                     const linalg::DenseVector& w) {
  return ac.async_broadcast(w);
}

/// AC.STAT — snapshot of all workers' status.
[[nodiscard]] inline StatSnapshot STAT(const AsyncContext& ac) { return ac.stat(); }

/// AC.hasNext().
[[nodiscard]] inline bool ASYNChasNext(const AsyncContext& ac) { return ac.has_next(); }

}  // namespace asyncml::core
