#pragma once

// The ASYNCscheduler (paper §4.4).
//
// Dispatches tasks to workers according to a barrier-control strategy.
// Mirroring Spark's executor model, dispatch is *capacity aware*: a worker
// with C executor cores holds at most C tasks in flight, and each completed
// result frees a slot for the next idle partition owned by that worker.
// This keeps the number of concurrently in-flight tasks — and therefore the
// staleness of asynchronous updates — proportional to the cluster's core
// count rather than its partition count.
//
// A worker is *eligible* when it has free capacity, the barrier's per-worker
// filter passes, and the barrier's global gate allows dispatch.  The
// synchronous path (dispatch_all) bypasses capacity and ships one task per
// partition, which is exactly a BSP stage.
//
// The scheduler stamps tasks with a monotonically increasing round sequence
// (shared by all tasks of one dispatch call); the task RNG derives from
// (seed, partition, seq), so every round samples a fresh deterministic
// mini-batch and a retry of the same round recomputes the same batch.

#include <functional>
#include <vector>

#include "core/barrier.hpp"
#include "core/coordinator.hpp"
#include "engine/cluster.hpp"

namespace asyncml::core {

class AsyncScheduler {
 public:
  /// Builds the task for one partition; the scheduler fills in `id` and
  /// `seq` afterwards (everything else — fn, version, service floor, rng
  /// seed — is the solver's business).
  using TaskFactory = std::function<engine::TaskSpec(engine::PartitionId)>;

  AsyncScheduler(engine::Cluster& cluster, Coordinator& coordinator);

  /// Fixes partition placement: partition p lives on worker p % W.
  void set_num_partitions(int num_partitions);

  [[nodiscard]] int num_partitions() const noexcept { return num_partitions_; }
  [[nodiscard]] const std::vector<engine::PartitionId>& partitions_of(
      engine::WorkerId worker) const {
    return owned_.at(static_cast<std::size_t>(worker));
  }

  /// Fills `worker` to capacity with its idle partitions, ignoring barriers
  /// (used for priming). Returns the number of tasks submitted.
  int dispatch_worker(engine::WorkerId worker, const TaskFactory& factory);

  /// Dispatches idle partitions to every worker with free capacity that
  /// passes `barrier` (gate checked once against the current STAT snapshot).
  /// Returns the number of tasks submitted.
  int dispatch_eligible(const BarrierControl& barrier, const TaskFactory& factory);

  /// One task per partition to every worker regardless of barrier or
  /// capacity — the synchronous BSP stage used by sync algorithms running
  /// through ASYNC.
  int dispatch_all(const TaskFactory& factory);

  /// Resubmits a failed task to the next worker (Spark retry semantics for
  /// the asynchronous path). The factory rebuilds the task for the partition.
  void resubmit(const engine::TaskResult& failed, const TaskFactory& factory);

  /// Marks the partition idle again; AsyncContext::collect calls this for
  /// every collected result.
  void on_result_collected(engine::PartitionId partition);

  [[nodiscard]] std::uint64_t rounds_dispatched() const noexcept { return round_; }
  [[nodiscard]] int busy_partitions() const noexcept { return busy_count_; }

 private:
  /// Dispatches up to `budget` idle partitions of `worker`; -1 = no limit.
  int dispatch_partitions(engine::WorkerId worker, const TaskFactory& factory,
                          std::uint64_t seq, int budget);

  engine::Cluster& cluster_;
  Coordinator& coordinator_;
  std::vector<std::vector<engine::PartitionId>> owned_;
  std::vector<bool> busy_;           ///< per-partition in-flight flag
  std::vector<std::size_t> cursor_;  ///< per-worker round-robin position
  int busy_count_ = 0;
  int num_partitions_ = 0;
  std::uint64_t round_ = 0;
};

}  // namespace asyncml::core
