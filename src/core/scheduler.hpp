#pragma once

// The ASYNCscheduler (paper §4.4), extended with dynamic placement.
//
// Dispatches tasks to workers according to a barrier-control strategy.
// Mirroring Spark's executor model, dispatch is *capacity aware*: a worker
// with C executor cores holds at most C tasks in flight, and each completed
// result frees a slot for the next idle partition owned by that worker.
// This keeps the number of concurrently in-flight tasks — and therefore the
// staleness of asynchronous updates — proportional to the cluster's core
// count rather than its partition count.
//
// A worker is *eligible* when it has free capacity, the barrier's per-worker
// filter passes, and the barrier's global gate allows dispatch.  The
// synchronous path (dispatch_all) bypasses capacity and ships one task per
// partition, which is exactly a BSP stage.
//
// Placement starts fixed (partition p on worker p % W) but may evolve:
//
//  * Locality-aware work stealing (SchedulerPolicy::steal_mode) — when a
//    worker has free capacity and no idle owned partition, it may claim an
//    idle partition from the most-backlogged peer, paying a one-time
//    data-migration cost modeled through NetworkModel.  Ownership transfers,
//    so subsequent rounds are local again.  Eligibility composes: a thief
//    must pass the barrier filter, and only a barrier-shunned victim may
//    lose its last partition (it cannot run it anyway).
//
//  * Speculative task replication (SchedulerPolicy::speculation_factor) — a
//    task whose in-flight age exceeds factor × the cluster-median EWMA
//    service time is re-dispatched to a fast worker with free capacity.
//    The coordinator's first-result-wins bookkeeping drops the loser; safe
//    because a replica of the same (seed, partition, seq) recomputes the
//    identical mini-batch, so duplicates are bit-identical.
//
// The scheduler stamps tasks with a monotonically increasing round sequence
// (shared by all tasks of one dispatch call); the task RNG derives from
// (seed, partition, seq), so every round samples a fresh deterministic
// mini-batch and a retry or replica of the same round recomputes the same
// batch.  Neither stealing nor speculation changes any computed value —
// only where and when work runs (docs/SCHEDULING.md, "Determinism").

#include <cstddef>
#include <functional>
#include <vector>

#include "core/barrier.hpp"
#include "core/coordinator.hpp"
#include "engine/cluster.hpp"
#include "support/stopwatch.hpp"

namespace asyncml::core {

/// Placement policy for partitions whose owner cannot service them.
enum class StealMode {
  kOff,       ///< fixed placement: partition p stays on worker p % W forever
  kLocality,  ///< backlogged peers shed idle partitions to free workers
};

/// Dynamic-placement knobs, set once per run (SolverConfig carries the
/// user-facing copies; docs/SCHEDULING.md is the handbook).
struct SchedulerPolicy {
  StealMode steal_mode = StealMode::kOff;

  /// Speculative replication threshold: replicate a task whose in-flight age
  /// exceeds `speculation_factor` × the cluster-median EWMA service time.
  /// <= 0 disables speculation.
  double speculation_factor = 0.0;

  /// Lost-task rescue: a task whose in-flight age exceeds `lost_task_factor`
  /// × the cluster-median EWMA service time is presumed lost — its result
  /// was dropped in transit or its holder died without notice — so ordinary
  /// speculation can never pay off (the "original" will not finish). The
  /// sweep writes the lost copy's registration off (Coordinator::
  /// try_write_off, race-safe against a late arrival) and dispatches a
  /// fresh replica, bypassing both the one-replica-per-task limit and the
  /// predicted-remaining gate, accepting any alive worker with a free core.
  /// <= 0 disables rescue (the default): like speculation, rescue re-executes
  /// tasks, which is only safe when task closures are stateless or
  /// re-entrant — SAGA's version-table tasks are neither. Runs that face
  /// result drops or crashes (chaos tests) opt in; 6.0 is a sane value, well
  /// above any speculation_factor. On a fast simulated cluster the EWMA
  /// median is sub-millisecond, so a horizon even briefly exceeded would
  /// otherwise fire constantly.
  double lost_task_factor = 0.0;

  /// Hysteresis for stealing: a move must shrink the victim's estimated
  /// drain time to below 1/steal_margin of its current value relative to
  /// the thief's, so EWMA jitter on a healthy cluster never triggers moves
  /// (a no-delay run keeps the fixed placement bit-for-bit).
  double steal_margin = 1.15;

  /// Modeled resident bytes per partition — the one-time migration cost of
  /// a steal (and the remote-read cost of a speculative replica), charged
  /// through the cluster's NetworkModel. Empty = migration is free.
  std::vector<std::size_t> partition_bytes;
};

class AsyncScheduler {
 public:
  /// Builds the task for one partition; the scheduler fills in `id` and
  /// `seq` afterwards (everything else — fn, version, service floor, rng
  /// seed — is the solver's business).
  using TaskFactory = std::function<engine::TaskSpec(engine::PartitionId)>;

  AsyncScheduler(engine::Cluster& cluster, Coordinator& coordinator);

  /// Fixes the initial placement over the current member set: with all
  /// workers members (the default) partition p lives on worker p % W; with
  /// M < W members, on the p % M-th member. Call set_members first.
  void set_num_partitions(int num_partitions);

  // -- elastic membership ----------------------------------------------------
  //
  // The member set is the workers that own partitions and receive dispatch.
  // It changes mid-run: a dormant worker joins (FaultPlan kJoinWorker →
  // AsyncContext admits it), a crashed worker leaves. Neither event changes
  // any computed value — partition ownership moves, but a task's mini-batch
  // still derives from (seed, partition, seq) alone.

  /// Replaces the member set (size = cluster worker count). Call before
  /// set_num_partitions; non-members own nothing and receive no dispatch
  /// until admitted.
  void set_members(std::vector<bool> members);
  [[nodiscard]] bool is_member(engine::WorkerId worker) const {
    return member_[static_cast<std::size_t>(worker)];
  }
  [[nodiscard]] int member_count() const;

  /// Admits a dormant worker mid-run: marks it a member and moves idle
  /// partitions onto it from the most-loaded members, up to its fair share
  /// (⌊P / members⌋), charging the modeled migration cost. The worker's
  /// first task per partition then cold-anchors on the nearest store
  /// snapshot and catches up over the delta chain (store/model_store.hpp).
  /// Returns the number of partitions transferred.
  int admit_worker(engine::WorkerId worker);

  /// Tops mid-run joiners up toward their fair share: admit_worker can only
  /// move partitions that are idle *right now*, so a worker admitted while
  /// everything was busy keeps filling as results free partitions. Called by
  /// the AsyncContext membership poll each collect pass; restricted to
  /// workers still flagged as filling (a one-shot per admission), so a
  /// settled distribution — including one reshaped by work stealing — never
  /// churns. Returns the number of partitions transferred.
  int rebalance_joiners();

  /// Removes a dead worker from the member set and moves every partition it
  /// owned to the least-loaded alive members. Tasks it held in flight are
  /// not touched here: they surface as crash-synthesized failures and ride
  /// the normal retry path (or a replica already covers them). Returns the
  /// number of partitions transferred.
  int handle_worker_death(engine::WorkerId worker);

  /// Seeds the round counter from a checkpoint. Call before the first
  /// dispatch of a resumed run: mini-batches derive from (seed, partition,
  /// seq), so the seq stream must continue where the interrupted run
  /// stopped for the resumed trajectory to match the uninterrupted one.
  void resume_round(std::uint64_t round) { round_ = round; }

  /// Installs the dynamic-placement policy (defaults keep both features
  /// off, i.e. the classic fixed-placement scheduler).
  void set_policy(SchedulerPolicy policy);
  [[nodiscard]] const SchedulerPolicy& policy() const noexcept { return policy_; }

  [[nodiscard]] int num_partitions() const noexcept { return num_partitions_; }

  /// Partitions currently owned by `worker`. Throws std::out_of_range with a
  /// descriptive message for an invalid worker id.
  [[nodiscard]] const std::vector<engine::PartitionId>& partitions_of(
      engine::WorkerId worker) const;

  /// Fills `worker` to capacity with its idle partitions, ignoring barriers
  /// (used for priming). Returns the number of tasks submitted.
  int dispatch_worker(engine::WorkerId worker, const TaskFactory& factory);

  /// Dispatches idle partitions to every worker with free capacity that
  /// passes `barrier` (gate checked once against the current STAT snapshot).
  /// Under StealMode::kLocality, a stealing pass rebalances idle partitions
  /// onto eligible free workers first. Returns the number of tasks submitted.
  int dispatch_eligible(const BarrierControl& barrier, const TaskFactory& factory);

  /// One task per partition to every worker regardless of barrier or
  /// capacity — the synchronous BSP stage used by sync algorithms running
  /// through ASYNC. Under StealMode::kLocality the stage is preceded by a
  /// makespan-driven stealing pass over idle partitions.
  int dispatch_all(const TaskFactory& factory);

  /// Resubmits a failed task to the next worker (Spark retry semantics for
  /// the asynchronous path). The factory rebuilds the task for the partition.
  void resubmit(const engine::TaskResult& failed, const TaskFactory& factory);

  /// Marks the partition idle again; AsyncContext::collect calls this for
  /// every collected result.
  void on_result_collected(engine::PartitionId partition);

  /// Speculation sweep: re-dispatches every overdue in-flight task (age >
  /// speculation_factor × cluster-median EWMA) to a fast worker with free
  /// capacity, at most one replica per task. Driven by AsyncContext::collect
  /// so BSP-style rounds blocked on a straggler still speculate. Returns the
  /// number of replicas dispatched (0 when speculation is off).
  int maybe_speculate();

  [[nodiscard]] std::uint64_t rounds_dispatched() const noexcept { return round_; }
  [[nodiscard]] int busy_partitions() const noexcept { return busy_count_; }
  [[nodiscard]] std::uint64_t partitions_stolen() const noexcept { return steals_; }
  [[nodiscard]] std::uint64_t tasks_speculated() const noexcept { return speculations_; }

 private:
  /// Everything the scheduler must remember about an in-flight dispatch to
  /// replicate it bit-identically: the exact spec (same fn → same pinned
  /// model version, same rng seed / partition / seq → same mini-batch).
  struct InflightRecord {
    engine::TaskSpec spec;
    support::TimePoint dispatched_at{};
    engine::WorkerId worker = 0;
    /// Tasks ahead of this one in the worker's mailbox at dispatch time:
    /// with the worker's EWMA it predicts when the task *should* finish, so
    /// the speculation sweep can tell "slow worker" from "deep queue".
    int queue_ahead = 0;
    bool speculated = false;
    bool valid = false;
  };

  /// Dispatches up to `budget` idle partitions of `worker`; -1 = no limit.
  int dispatch_partitions(engine::WorkerId worker, const TaskFactory& factory,
                          std::uint64_t seq, int budget);

  /// One stealing pass over the current backlog. `barrier` non-null applies
  /// eligibility (thieves must pass the filter; only filtered-out victims
  /// may lose their last partition); `capacity_mode` restricts thieves to
  /// workers with free capacity and no idle owned partition (the
  /// asynchronous path). Returns the number of ownership transfers.
  int steal_pass(const StatSnapshot& stat, const BarrierControl* barrier,
                 bool capacity_mode);

  /// Moves ownership of `partition` from `victim` to `thief`, charging the
  /// modeled migration cost to the partition's next task.
  void transfer_ownership(engine::PartitionId partition, engine::WorkerId victim,
                          engine::WorkerId thief);

  [[nodiscard]] std::size_t partition_data_bytes(engine::PartitionId p) const;
  [[nodiscard]] int idle_owned(engine::WorkerId worker) const;

  /// True when `worker` may be dispatched to: a member that is still alive.
  [[nodiscard]] bool dispatchable(engine::WorkerId worker) const;

  /// Moves idle partitions from the most-loaded members onto `worker` until
  /// it owns its fair share (⌊P / members⌋); the admit/rebalance core.
  int fill_toward_share(engine::WorkerId worker);

  engine::Cluster& cluster_;
  Coordinator& coordinator_;
  SchedulerPolicy policy_;
  std::vector<bool> member_;   ///< elastic member set (all true by default)
  std::vector<bool> filling_;  ///< joiners still below their fair share
  std::vector<std::vector<engine::PartitionId>> owned_;
  std::vector<bool> busy_;           ///< per-partition in-flight flag
  std::vector<std::size_t> cursor_;  ///< per-worker round-robin position
  std::vector<InflightRecord> inflight_;     ///< per-partition dispatch records
  std::vector<double> pending_migration_ms_; ///< charge on next dispatch
  int busy_count_ = 0;
  int num_partitions_ = 0;
  std::uint64_t round_ = 0;
  std::uint64_t steals_ = 0;
  std::uint64_t speculations_ = 0;
};

}  // namespace asyncml::core
