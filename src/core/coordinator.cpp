#include "core/coordinator.hpp"

#include <algorithm>

#include "support/thread_util.hpp"

namespace asyncml::core {

Coordinator::Coordinator(engine::Cluster& cluster)
    : cluster_(cluster),
      stats_(static_cast<std::size_t>(cluster.num_workers())),
      inflight_versions_(static_cast<std::size_t>(cluster.num_workers())),
      task_time_ewma_(static_cast<std::size_t>(cluster.num_workers())) {
  for (int w = 0; w < cluster.num_workers(); ++w) {
    stats_[static_cast<std::size_t>(w)].id = w;
  }
}

Coordinator::~Coordinator() { stop(); }

void Coordinator::start() {
  if (running_.exchange(true)) return;
  drain_thread_ = std::jthread([this] { drain_loop(); });
}

void Coordinator::stop() {
  if (!running_.exchange(false)) return;
  if (drain_thread_.joinable()) drain_thread_.join();
  results_.close();
  failures_.close();
}

void Coordinator::drain_loop() {
  support::set_current_thread_name("coordinator");
  while (running_.load(std::memory_order_acquire)) {
    // Swap out everything delivered since the last wakeup under one lock
    // (BlockingQueue::drain_for) instead of one mutex round-trip per
    // TaskResult; an empty batch means timeout or shutdown — re-check flag.
    auto batch = cluster_.results().drain_for(std::chrono::milliseconds(2));
    for (auto& result : batch) process_result(std::move(result));
  }
}

void Coordinator::process_result(engine::TaskResult result) {
  TaggedResult tagged;
  bool duplicate = false;
  {
    std::lock_guard lock(stat_mutex_);

    // Excess detection BEFORE any STAT bookkeeping: an arrival from a worker
    // whose registration for this identity was already consumed — an injected
    // at-least-once duplicate (kDuplicateResult), or a written-off copy that
    // surfaced after all — carries no registration, so applying it would
    // corrupt `outstanding` and the inflight-version multiset, and deliver
    // the same update twice.
    const TaskKey key{result.partition, result.seq};
    const auto it = inflight_tasks_.find(key);
    bool excess = false;
    if (it != inflight_tasks_.end()) {
      const auto wit = it->second.copies.find(result.worker);
      excess = wit == it->second.copies.end() || wit->second <= 0;
    } else if (const auto last = last_accounted_seq_.find(result.partition);
               last != last_accounted_seq_.end()) {
      excess = result.seq <= last->second;
    }

    if (excess) {
      duplicate = true;
    } else {
      apply_result_locked(result);

      // First-result-wins: a task registered per identity may have replicas
      // in flight (speculation, retries). Only the first OK result is
      // delivered; later arrivals — and failures of already-delivered tasks,
      // which need no retry — are dropped after their STAT bookkeeping.
      // A failure whose identity still has a live copy is dropped too: the
      // bit-identical replica covers the task, so a retry would be a wasted
      // third dispatch (and would burn the shared retry budget). If the
      // surviving copy also fails, its failure arrives with no copies left
      // and re-arms the retry path.
      if (it != inflight_tasks_.end()) {
        InflightTask& entry = it->second;
        if (entry.delivered) {
          duplicate = true;
        } else if (result.ok()) {
          entry.delivered = true;
        } else if (entry.copies.size() > 1 ||
                   entry.copies.at(result.worker) > 1) {
          duplicate = true;  // a live replica still covers this identity
        }
        consume_copy_locked(it, result.worker);
      }

      const engine::Version now = current_version();
      WorkerStat row = stats_[static_cast<std::size_t>(result.worker)];
      row.result_staleness = now - row.last_result_version;
      row.task_staleness =
          row.ever_dispatched ? now - row.last_dispatch_version : 0;
      tagged.staleness = now >= result.model_version ? now - result.model_version : 0;
      tagged.worker = row;
    }
  }
  if (duplicate) {
    duplicates_dropped_.fetch_add(1, std::memory_order_relaxed);
    cluster_.metrics().duplicate_results.add(1);
  } else if (result.ok()) {
    // Harvest cycle: the coordinator's drain thread is the consumer side of
    // the telemetry rings — staleness is recorded at processing time (same
    // definition as tagged.staleness) and every harvest_every-th delivered
    // result drains the per-thread rings, off the timed solver path.
    auto& recorder = cluster_.telemetry();
    if (recorder.enabled()) {
      recorder.record_staleness(tagged.staleness);
      recorder.on_result_processed();
    }
    tagged.result = std::move(result);
    results_.push(std::move(tagged));
  } else {
    failures_.push(std::move(result));
  }
}

void Coordinator::apply_result_locked(const engine::TaskResult& r) {
  WorkerStat& row = stats_[static_cast<std::size_t>(r.worker)];
  row.outstanding = std::max(0, row.outstanding - 1);
  row.available = row.outstanding == 0;
  auto& inflight = inflight_versions_[static_cast<std::size_t>(r.worker)];
  if (const auto it = inflight.find(r.model_version); it != inflight.end()) {
    inflight.erase(it);  // exactly one instance: this task's pin is released
  }
  fill_min_outstanding_locked(row);
  if (r.ok()) {
    row.tasks_completed += 1;
    // OK results only: failures carry no real service time — an injected
    // fault or a crash-synthesized bounce reports ~0 ms, which would drag
    // the EWMA that steers stealing and speculation toward zero and make a
    // faulty worker look infinitely fast.
    auto& ewma = task_time_ewma_[static_cast<std::size_t>(r.worker)];
    ewma.observe(r.service_ms);
    row.avg_task_ms = ewma.value();
    row.mean_task_ms = ewma.mean();
  } else {
    row.tasks_failed += 1;
  }
  row.last_result_version = r.model_version;
}

void Coordinator::consume_copy_locked(std::map<TaskKey, InflightTask>::iterator it,
                                      engine::WorkerId worker) {
  InflightTask& entry = it->second;
  const auto wit = entry.copies.find(worker);
  if (wit != entry.copies.end() && --wit->second <= 0) entry.copies.erase(wit);
  if (entry.copies.empty()) {
    std::uint64_t& floor = last_accounted_seq_[it->first.first];
    floor = std::max(floor, it->first.second);
    inflight_tasks_.erase(it);
  }
}

void Coordinator::unwind_dispatch_locked(engine::WorkerId worker,
                                         engine::Version version) {
  WorkerStat& row = stats_[static_cast<std::size_t>(worker)];
  row.outstanding = std::max(0, row.outstanding - 1);
  row.available = row.outstanding == 0;
  auto& inflight = inflight_versions_[static_cast<std::size_t>(worker)];
  if (const auto it = inflight.find(version); it != inflight.end()) {
    inflight.erase(it);
  }
  fill_min_outstanding_locked(row);
}

StatSnapshot Coordinator::stat() const {
  StatSnapshot snap;
  std::lock_guard lock(stat_mutex_);
  snap.current_version = current_version();
  snap.workers = stats_;
  for (WorkerStat& row : snap.workers) {
    // Staleness fields are derived at snapshot time so they reflect the
    // *current* version, not the version when the row last changed.
    row.result_staleness =
        row.tasks_completed > 0 ? snap.current_version - row.last_result_version : 0;
    row.task_staleness =
        row.ever_dispatched ? snap.current_version - row.last_dispatch_version : 0;
  }
  return snap;
}

std::optional<TaggedResult> Coordinator::collect_for(std::chrono::milliseconds timeout) {
  return results_.pop_for(timeout);
}

std::optional<TaggedResult> Coordinator::collect() { return results_.pop(); }

std::optional<TaggedResult> Coordinator::try_collect() { return results_.try_pop(); }

std::optional<engine::TaskResult> Coordinator::try_collect_failure() {
  return failures_.try_pop();
}

int Coordinator::total_outstanding() const {
  std::lock_guard lock(stat_mutex_);
  int total = 0;
  for (const WorkerStat& row : stats_) total += row.outstanding;
  return total;
}

int Coordinator::outstanding(engine::WorkerId worker) const {
  std::lock_guard lock(stat_mutex_);
  return stats_[static_cast<std::size_t>(worker)].outstanding;
}

void Coordinator::on_dispatch(engine::WorkerId worker, int tasks,
                              engine::Version version) {
  std::lock_guard lock(stat_mutex_);
  register_dispatch_locked(worker, tasks, version);
}

void Coordinator::on_task_dispatch(engine::WorkerId worker,
                                   const engine::TaskSpec& spec) {
  std::lock_guard lock(stat_mutex_);
  register_dispatch_locked(worker, 1, spec.model_version);
  inflight_tasks_[TaskKey{spec.partition, spec.seq}].copies[worker] += 1;
}

bool Coordinator::try_register_replica(engine::WorkerId worker,
                                       const engine::TaskSpec& spec) {
  std::lock_guard lock(stat_mutex_);
  const auto it = inflight_tasks_.find(TaskKey{spec.partition, spec.seq});
  if (it == inflight_tasks_.end() || it->second.delivered ||
      it->second.copies.empty()) {
    return false;  // original already accounted: a replica would double-deliver
  }
  it->second.copies[worker] += 1;
  register_dispatch_locked(worker, 1, spec.model_version);
  return true;
}

void Coordinator::on_dispatch_aborted(engine::WorkerId worker,
                                      const engine::TaskSpec& spec) {
  std::lock_guard lock(stat_mutex_);
  unwind_dispatch_locked(worker, spec.model_version);
  if (const auto it = inflight_tasks_.find(TaskKey{spec.partition, spec.seq});
      it != inflight_tasks_.end()) {
    consume_copy_locked(it, worker);
  }
}

bool Coordinator::try_write_off(engine::WorkerId worker,
                                const engine::TaskSpec& spec) {
  std::lock_guard lock(stat_mutex_);
  const auto it = inflight_tasks_.find(TaskKey{spec.partition, spec.seq});
  if (it == inflight_tasks_.end()) return false;
  const auto wit = it->second.copies.find(worker);
  if (wit == it->second.copies.end() || wit->second <= 0) {
    return false;  // that copy's result already arrived: nothing to write off
  }
  unwind_dispatch_locked(worker, spec.model_version);
  consume_copy_locked(it, worker);
  return true;
}

void Coordinator::register_dispatch_locked(engine::WorkerId worker, int tasks,
                                           engine::Version version) {
  WorkerStat& row = stats_[static_cast<std::size_t>(worker)];
  row.outstanding += tasks;
  row.available = row.outstanding == 0;
  row.last_dispatch_version = version;
  row.ever_dispatched = true;
  auto& inflight = inflight_versions_[static_cast<std::size_t>(worker)];
  for (int t = 0; t < tasks; ++t) inflight.insert(version);
  fill_min_outstanding_locked(row);
}

void Coordinator::fill_min_outstanding_locked(WorkerStat& row) const {
  const auto& inflight = inflight_versions_[static_cast<std::size_t>(row.id)];
  row.min_outstanding_version = inflight.empty() ? 0 : *inflight.begin();
}

}  // namespace asyncml::core
