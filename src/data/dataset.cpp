#include "data/dataset.hpp"

#include <cassert>
#include <cmath>

namespace asyncml::data {

Dataset::Dataset(std::string name, linalg::DenseMatrix features,
                 linalg::DenseVector labels)
    : name_(std::move(name)), features_(std::move(features)), labels_(std::move(labels)) {
  assert(rows() == labels_.size());
}

Dataset::Dataset(std::string name, linalg::CsrMatrix features, linalg::DenseVector labels)
    : name_(std::move(name)), features_(std::move(features)), labels_(std::move(labels)) {
  assert(rows() == labels_.size());
}

std::size_t Dataset::rows() const noexcept {
  if (is_dense()) return std::get<linalg::DenseMatrix>(features_).rows();
  if (std::holds_alternative<linalg::CsrMatrix>(features_)) {
    return std::get<linalg::CsrMatrix>(features_).rows();
  }
  return 0;
}

std::size_t Dataset::cols() const noexcept {
  if (is_dense()) return std::get<linalg::DenseMatrix>(features_).cols();
  if (std::holds_alternative<linalg::CsrMatrix>(features_)) {
    return std::get<linalg::CsrMatrix>(features_).cols();
  }
  return 0;
}

std::size_t Dataset::feature_bytes() const noexcept {
  if (is_dense()) return std::get<linalg::DenseMatrix>(features_).size_bytes();
  if (std::holds_alternative<linalg::CsrMatrix>(features_)) {
    return std::get<linalg::CsrMatrix>(features_).size_bytes();
  }
  return 0;
}

RowRef Dataset::row(std::size_t r) const {
  if (is_dense()) return RowRef(std::get<linalg::DenseMatrix>(features_).row(r));
  return RowRef(std::get<linalg::CsrMatrix>(features_).row(r));
}

double Dataset::density() const {
  if (is_dense()) return 1.0;
  return std::get<linalg::CsrMatrix>(features_).density();
}

Dataset normalize_rows(const Dataset& in) {
  if (in.is_dense()) {
    linalg::DenseMatrix out(in.rows(), in.cols());
    for (std::size_t r = 0; r < in.rows(); ++r) {
      const auto src = in.dense_features().row(r);
      const double norm = linalg::nrm2(src);
      const double inv = norm > 0.0 ? 1.0 / norm : 0.0;
      auto dst = out.row(r);
      for (std::size_t c = 0; c < in.cols(); ++c) dst[c] = src[c] * inv;
    }
    return Dataset(in.name(), std::move(out), in.labels());
  }
  linalg::CsrMatrix out = linalg::CsrMatrix::for_appending(in.cols());
  for (std::size_t r = 0; r < in.rows(); ++r) {
    const linalg::SparseRowView src = in.sparse_features().row(r);
    double norm_sq = 0.0;
    for (double v : src.values) norm_sq += v * v;
    const double inv = norm_sq > 0.0 ? 1.0 / std::sqrt(norm_sq) : 0.0;
    linalg::SparseVector row;
    for (std::size_t k = 0; k < src.nnz(); ++k) {
      row.push_back(src.indices[k], src.values[k] * inv);
    }
    out.append_row(row);
  }
  return Dataset(in.name(), std::move(out), in.labels());
}

}  // namespace asyncml::data
