#pragma once

// Train/test splitting and prediction-quality metrics.
//
// The paper evaluates optimization error only; downstream users of the
// library also need holdout evaluation, so the data layer provides a
// deterministic shuffled split and the standard regression/classification
// scores used by the examples.

#include <cstdint>
#include <utility>

#include "data/dataset.hpp"
#include "linalg/dense_vector.hpp"

namespace asyncml::data {

struct TrainTestSplit {
  Dataset train;
  Dataset test;
};

/// Shuffles rows with `seed` and splits off `test_fraction` of them (at least
/// one row each side when the dataset has >= 2 rows).
[[nodiscard]] TrainTestSplit train_test_split(const Dataset& dataset,
                                              double test_fraction,
                                              std::uint64_t seed);

/// Root-mean-square error of the linear predictions <x_i, w> vs labels.
[[nodiscard]] double rmse(const Dataset& dataset, const linalg::DenseVector& w);

/// Fraction of rows where sign(<x_i, w>) matches sign(label) (labels ±1).
[[nodiscard]] double sign_accuracy(const Dataset& dataset, const linalg::DenseVector& w);

/// Coefficient of determination R² of the linear predictions.
[[nodiscard]] double r_squared(const Dataset& dataset, const linalg::DenseVector& w);

}  // namespace asyncml::data
