#include "data/partition.hpp"

#include <cassert>

namespace asyncml::data {

std::vector<RowRange> contiguous_partitions(std::size_t n, std::size_t parts) {
  assert(parts > 0);
  std::vector<RowRange> out;
  out.reserve(parts);
  const std::size_t base = n / parts;
  const std::size_t extra = n % parts;
  std::size_t cursor = 0;
  for (std::size_t p = 0; p < parts; ++p) {
    const std::size_t len = base + (p < extra ? 1 : 0);
    out.push_back(RowRange{cursor, cursor + len});
    cursor += len;
  }
  assert(cursor == n);
  return out;
}

int worker_for_partition(int partition, int num_workers) noexcept {
  assert(num_workers > 0);
  return partition % num_workers;
}

std::vector<int> partitions_of_worker(int worker, int num_partitions, int num_workers) {
  std::vector<int> out;
  for (int p = worker; p < num_partitions; p += num_workers) out.push_back(p);
  return out;
}

}  // namespace asyncml::data
