#pragma once

// LIBSVM text format I/O.
//
// The paper's datasets (rcv1_full.binary, mnist8m, epsilon) ship in LIBSVM
// format; this reader lets real files drop into the harness unchanged.  The
// format is one example per line: `label idx:val idx:val ...` with 1-based,
// strictly increasing indices.  The writer produces the same format so
// synthetic datasets can be exported for use with other tools.

#include <iosfwd>
#include <string>

#include "data/dataset.hpp"
#include "support/status.hpp"

namespace asyncml::data {

struct LibsvmOptions {
  /// Total feature count; 0 means "infer from the maximum index seen".
  std::size_t num_features = 0;
  /// Stop after this many examples (0 = read all). Lets tests/benches cap
  /// gigantic files.
  std::size_t max_rows = 0;
};

/// Parses a LIBSVM stream into a sparse dataset.
[[nodiscard]] support::StatusOr<Dataset> read_libsvm(std::istream& in,
                                                     std::string name,
                                                     const LibsvmOptions& options = {});

/// Parses a LIBSVM file from disk.
[[nodiscard]] support::StatusOr<Dataset> load_libsvm(const std::string& path,
                                                     const LibsvmOptions& options = {});

/// Writes a dataset (dense or sparse) in LIBSVM format.
support::Status write_libsvm(std::ostream& out, const Dataset& dataset);

/// Writes to a file path.
support::Status save_libsvm(const std::string& path, const Dataset& dataset);

}  // namespace asyncml::data
