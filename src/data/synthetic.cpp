#include "data/synthetic.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/blas.hpp"

namespace asyncml::data::synthetic {

namespace {

using linalg::DenseMatrix;
using linalg::DenseVector;
using support::RngStream;

/// Hidden parameter with O(1) entries; fixed scale keeps objective magnitudes
/// comparable across datasets (the paper's error plots span 1e-4..1e2).
DenseVector make_w_star(std::size_t d, RngStream& rng) {
  DenseVector w(d);
  for (std::size_t i = 0; i < d; ++i) w[i] = rng.next_gaussian();
  return w;
}

/// y = Xw* + noise, dense features.
DenseVector make_labels(const DenseMatrix& x, const DenseVector& w_star,
                        double noise_std, RngStream& rng) {
  DenseVector y(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    y[r] = linalg::dot(x.row(r), w_star.span());
    if (noise_std > 0.0) y[r] += noise_std * rng.next_gaussian();
  }
  return y;
}

/// y = Xw* + noise, sparse features.
DenseVector make_labels(const linalg::CsrMatrix& x, const DenseVector& w_star,
                        double noise_std, RngStream& rng) {
  DenseVector y(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    y[r] = linalg::dot(x.row(r), w_star.span());
    if (noise_std > 0.0) y[r] += noise_std * rng.next_gaussian();
  }
  return y;
}

}  // namespace

Problem make_dense(const DenseSpec& spec, std::uint64_t seed) {
  RngStream root(seed);
  RngStream feature_rng = root.substream(1);
  RngStream label_rng = root.substream(2);
  RngStream wstar_rng = root.substream(3);

  DenseMatrix x(spec.rows, spec.cols);

  if (spec.clusters > 0) {
    // Cluster-structured rows (mnist-like): row = clamp(center + 0.2·noise).
    DenseMatrix centers(spec.clusters, spec.cols);
    for (std::size_t c = 0; c < spec.clusters; ++c) {
      auto row = centers.row(c);
      for (std::size_t j = 0; j < spec.cols; ++j) {
        // Sparse-ish bright regions over a dark background, like digit images.
        row[j] = feature_rng.bernoulli(0.2) ? feature_rng.uniform(0.4, 1.0) : 0.0;
      }
    }
    for (std::size_t r = 0; r < spec.rows; ++r) {
      const std::size_t c = static_cast<std::size_t>(feature_rng.next_below(spec.clusters));
      const auto center = centers.row(c);
      auto row = x.row(r);
      for (std::size_t j = 0; j < spec.cols; ++j) {
        double v = center[j] + 0.2 * feature_rng.next_gaussian();
        row[j] = spec.pixel_like ? std::clamp(v, 0.0, 1.0) : v;
      }
    }
  } else {
    for (std::size_t r = 0; r < spec.rows; ++r) {
      auto row = x.row(r);
      for (std::size_t j = 0; j < spec.cols; ++j) row[j] = feature_rng.next_gaussian();
    }
  }

  if (spec.normalize_rows) {
    for (std::size_t r = 0; r < spec.rows; ++r) {
      auto row = x.row(r);
      const double norm = linalg::nrm2(row);
      if (norm > 0.0) linalg::scal(1.0 / norm, row);
    }
  }

  DenseVector w_star = make_w_star(spec.cols, wstar_rng);
  DenseVector y = make_labels(x, w_star, spec.noise_std, label_rng);
  return Problem{Dataset(spec.name, std::move(x), std::move(y)), std::move(w_star),
                 spec.noise_std};
}

Problem make_sparse(const SparseSpec& spec, std::uint64_t seed) {
  RngStream root(seed);
  RngStream feature_rng = root.substream(1);
  RngStream label_rng = root.substream(2);
  RngStream wstar_rng = root.substream(3);

  linalg::CsrMatrix x = linalg::CsrMatrix::for_appending(spec.cols);
  const double expected_nnz = spec.density * static_cast<double>(spec.cols);
  for (std::size_t r = 0; r < spec.rows; ++r) {
    // nnz per row: 1 + Poisson-ish via rounded exponential jitter around the
    // expectation, matching the skewed document-length distribution of rcv1.
    const double jitter = -std::log(1.0 - feature_rng.next_double());
    std::size_t nnz = static_cast<std::size_t>(std::max(1.0, expected_nnz * jitter));
    nnz = std::min(nnz, spec.cols);
    auto indices = support::sample_without_replacement(feature_rng, spec.cols, nnz);
    std::sort(indices.begin(), indices.end());
    linalg::SparseVector row;
    double norm_sq = 0.0;
    for (std::size_t idx : indices) {
      // TF-IDF-like positive weights.
      const double v = 0.1 + std::abs(feature_rng.next_gaussian());
      row.push_back(static_cast<std::uint32_t>(idx), v);
      norm_sq += v * v;
    }
    if (spec.normalize_rows && norm_sq > 0.0) {
      const double inv = 1.0 / std::sqrt(norm_sq);
      linalg::SparseVector scaled;
      for (std::size_t k = 0; k < row.nnz(); ++k) {
        scaled.push_back(row.indices()[k], row.values()[k] * inv);
      }
      row = std::move(scaled);
    }
    x.append_row(row);
  }

  DenseVector w_star = make_w_star(spec.cols, wstar_rng);
  DenseVector y = make_labels(x, w_star, spec.noise_std, label_rng);
  return Problem{Dataset(spec.name, std::move(x), std::move(y)), std::move(w_star),
                 spec.noise_std};
}

Problem rcv1_like(std::uint64_t seed, double row_scale) {
  SparseSpec spec;
  spec.name = "rcv1_like";
  spec.rows = static_cast<std::size_t>(4'000 * row_scale);
  spec.cols = 4'000;
  // ~8 nnz per row over 4000 features (density 0.2%): rcv1's defining
  // communication property is that a row's support is a tiny fraction of the
  // feature space (~73 nnz over 47k features ≈ 0.15%), and that ratio — not
  // the raw nnz count — is what decides how much the sparse gradient and
  // model-delta pipelines save.  An earlier 1000-feature stand-in put 0.8%
  // of the model in every row and saturated both.  Rows stay >= cols at the
  // bench scales used so the scaled problem remains conditioned enough for
  // convergence curves to show shape within bench-sized budgets.
  spec.density = 0.002;
  spec.noise_std = 0.0;
  spec.normalize_rows = true;
  return make_sparse(spec, seed);
}

Problem mnist8m_like(std::uint64_t seed, double row_scale) {
  DenseSpec spec;
  spec.name = "mnist8m_like";
  spec.rows = static_cast<std::size_t>(8'000 * row_scale);
  spec.cols = 784;
  spec.clusters = 10;
  spec.pixel_like = true;
  spec.noise_std = 0.0;
  return make_dense(spec, seed);
}

Problem epsilon_like(std::uint64_t seed, double row_scale) {
  DenseSpec spec;
  spec.name = "epsilon_like";
  spec.rows = static_cast<std::size_t>(4'000 * row_scale);
  spec.cols = 800;  // scaled below the row count for the same reason as rcv1_like
  spec.normalize_rows = true;
  spec.noise_std = 0.0;
  return make_dense(spec, seed);
}

Problem tiny(std::size_t rows, std::size_t cols, double noise_std, std::uint64_t seed) {
  DenseSpec spec;
  spec.name = "tiny";
  spec.rows = rows;
  spec.cols = cols;
  spec.noise_std = noise_std;
  return make_dense(spec, seed);
}

}  // namespace asyncml::data::synthetic
