#pragma once

// Synthetic dataset generators standing in for the paper's LIBSVM datasets.
//
// The real files (rcv1_full.binary 851 MB, mnist8m 19 GB, epsilon 12 GB) are
// not available offline, so each generator reproduces the *structural*
// properties that drive the cost profile of the experiments at roughly 1/1000
// scale (see DESIGN.md §4):
//   * rcv1_like    — high-dimensional, very sparse CSR rows (TF-IDF-ish
//                    positive values, unit-normalized), ~0.16% density;
//   * mnist8m_like — dense, low-dimensional (d=784), pixel-like values in
//                    [0,1] with cluster structure (10 digit-like modes);
//   * epsilon_like — dense, d=2000, rows normalized to unit L2 norm.
//
// Labels are regression targets y = <x, w*> + noise for a hidden w*, so the
// least-squares problem the paper solves has a known optimum: with zero noise
// F* = 0, which makes `error = F(w)` directly comparable to the paper's
// "objective minus baseline" metric.

#include <cstddef>
#include <string>

#include "data/dataset.hpp"
#include "linalg/dense_vector.hpp"
#include "support/rng.hpp"

namespace asyncml::data::synthetic {

/// A generated problem: the data, the hidden parameter, and the optimum value
/// of (1/n)·||Aw − b||² when it is known (noise == 0 ⇒ 0).
struct Problem {
  Dataset dataset;
  linalg::DenseVector w_star;
  double noise_std = 0.0;

  [[nodiscard]] bool optimum_known() const noexcept { return noise_std == 0.0; }
};

struct DenseSpec {
  std::string name = "dense";
  std::size_t rows = 10'000;
  std::size_t cols = 100;
  double noise_std = 0.0;
  bool normalize_rows = false;
  /// Number of cluster modes (0 = i.i.d. gaussian rows).
  std::size_t clusters = 0;
  /// Scale of values; cluster mode clamps rows into [0, 1] like pixels.
  bool pixel_like = false;
};

struct SparseSpec {
  std::string name = "sparse";
  std::size_t rows = 10'000;
  std::size_t cols = 5'000;
  /// Expected fraction of nonzero features per row.
  double density = 0.0016;
  double noise_std = 0.0;
  bool normalize_rows = true;
};

/// General-purpose generators.
[[nodiscard]] Problem make_dense(const DenseSpec& spec, std::uint64_t seed);
[[nodiscard]] Problem make_sparse(const SparseSpec& spec, std::uint64_t seed);

/// Paper-dataset stand-ins (scaled; pass a scale factor to grow/shrink rows).
[[nodiscard]] Problem rcv1_like(std::uint64_t seed, double row_scale = 1.0);
[[nodiscard]] Problem mnist8m_like(std::uint64_t seed, double row_scale = 1.0);
[[nodiscard]] Problem epsilon_like(std::uint64_t seed, double row_scale = 1.0);

/// Tiny dense problem with known optimum for unit tests (d small enough for
/// a direct solve).
[[nodiscard]] Problem tiny(std::size_t rows, std::size_t cols, double noise_std,
                           std::uint64_t seed);

}  // namespace asyncml::data::synthetic
