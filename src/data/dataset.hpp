#pragma once

// Dataset containers and the uniform row view used by gradient kernels.
//
// A Dataset is features (dense row-major or CSR sparse) plus labels.  The
// paper's three evaluation datasets split exactly along this line: mnist8m
// and epsilon are dense, rcv1 is sparse.  Optimizers never branch on the
// storage kind themselves; they consume RowRef, which dispatches dot/axpy to
// the right kernel.

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <variant>

#include "linalg/blas.hpp"
#include "linalg/dense_matrix.hpp"
#include "linalg/dense_vector.hpp"
#include "linalg/grad_vector.hpp"
#include "linalg/sparse.hpp"

namespace asyncml::data {

/// One example's features: exactly one representation is engaged.
class RowRef {
 public:
  explicit RowRef(std::span<const double> dense) : dense_(dense), is_dense_(true) {}
  explicit RowRef(linalg::SparseRowView sparse) : sparse_(sparse), is_dense_(false) {}

  [[nodiscard]] bool is_dense() const noexcept { return is_dense_; }

  /// <x, w>
  [[nodiscard]] double dot(std::span<const double> w) const {
    return is_dense_ ? linalg::dot(dense_, w) : linalg::dot(sparse_, w);
  }

  /// y += a * x
  void axpy_into(double a, std::span<double> y) const {
    if (is_dense_) {
      linalg::axpy(a, dense_, y);
    } else {
      linalg::axpy(a, sparse_, y);
    }
  }

  /// g += a * x, preserving g's sparse accumulation when x is sparse (dense
  /// rows have full support and densify g immediately).
  void axpy_into(double a, linalg::GradVector& g) const {
    if (is_dense_) {
      g.axpy(a, dense_);
    } else {
      g.axpy(a, sparse_);
    }
  }

  /// ||x||²
  [[nodiscard]] double norm_squared() const {
    if (is_dense_) return linalg::nrm2_squared(dense_);
    double s = 0.0;
    for (double v : sparse_.values) s += v * v;
    return s;
  }

  [[nodiscard]] std::size_t nnz() const noexcept {
    return is_dense_ ? dense_.size() : sparse_.nnz();
  }

 private:
  std::span<const double> dense_;
  linalg::SparseRowView sparse_;
  bool is_dense_;
};

/// A labeled example as seen by RDD map functions: the element type of the
/// distributed "points" collection in Algorithms 1–4.
struct LabeledPoint {
  std::size_t index = 0;  ///< global row index (SAGA history key)
  double label = 0.0;
  RowRef features;
};

class Dataset {
 public:
  Dataset() = default;
  Dataset(std::string name, linalg::DenseMatrix features, linalg::DenseVector labels);
  Dataset(std::string name, linalg::CsrMatrix features, linalg::DenseVector labels);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] bool is_dense() const noexcept {
    return std::holds_alternative<linalg::DenseMatrix>(features_);
  }
  [[nodiscard]] std::size_t rows() const noexcept;
  [[nodiscard]] std::size_t cols() const noexcept;
  [[nodiscard]] std::size_t feature_bytes() const noexcept;

  [[nodiscard]] const linalg::DenseVector& labels() const noexcept { return labels_; }

  [[nodiscard]] RowRef row(std::size_t r) const;
  [[nodiscard]] LabeledPoint point(std::size_t r) const {
    return LabeledPoint{r, labels_[r], row(r)};
  }

  [[nodiscard]] const linalg::DenseMatrix& dense_features() const {
    return std::get<linalg::DenseMatrix>(features_);
  }
  [[nodiscard]] const linalg::CsrMatrix& sparse_features() const {
    return std::get<linalg::CsrMatrix>(features_);
  }

  /// Fraction of non-zero cells (1.0 for dense storage).
  [[nodiscard]] double density() const;

 private:
  std::string name_;
  std::variant<std::monostate, linalg::DenseMatrix, linalg::CsrMatrix> features_;
  linalg::DenseVector labels_;
};

using DatasetPtr = std::shared_ptr<const Dataset>;

/// Scales every feature row to unit L2 norm (epsilon is distributed
/// pre-normalized; the generator reuses this).
[[nodiscard]] Dataset normalize_rows(const Dataset& in);

}  // namespace asyncml::data
