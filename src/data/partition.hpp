#pragma once

// Row-range partitioning of a dataset into P partitions.
//
// Spark partitions an RDD into fixed splits that live on executors; our
// equivalent is a list of contiguous [begin, end) row ranges over a shared
// immutable Dataset.  Partition -> worker placement is round-robin and fixed
// for the lifetime of a run (the paper keeps data resident per executor).

#include <cstddef>
#include <vector>

namespace asyncml::data {

struct RowRange {
  std::size_t begin = 0;
  std::size_t end = 0;

  [[nodiscard]] std::size_t size() const noexcept { return end - begin; }
  friend bool operator==(const RowRange&, const RowRange&) = default;
};

/// Splits n rows into `parts` contiguous ranges whose sizes differ by at most
/// one (first `n % parts` ranges get the extra row).
[[nodiscard]] std::vector<RowRange> contiguous_partitions(std::size_t n,
                                                          std::size_t parts);

/// Maps partition id -> worker id round-robin.
[[nodiscard]] int worker_for_partition(int partition, int num_workers) noexcept;

/// Lists the partitions owned by `worker` under round-robin placement.
[[nodiscard]] std::vector<int> partitions_of_worker(int worker, int num_partitions,
                                                    int num_workers);

}  // namespace asyncml::data
