#include "data/split.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/rng.hpp"

namespace asyncml::data {

namespace {

/// Gathers `rows` of `src` into a new dataset (preserves storage kind).
Dataset gather_rows(const Dataset& src, const std::vector<std::size_t>& rows,
                    const std::string& suffix) {
  linalg::DenseVector labels(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) labels[i] = src.labels()[rows[i]];

  if (src.is_dense()) {
    linalg::DenseMatrix out(rows.size(), src.cols());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const auto from = src.dense_features().row(rows[i]);
      auto to = out.row(i);
      std::copy(from.begin(), from.end(), to.begin());
    }
    return Dataset(src.name() + suffix, std::move(out), std::move(labels));
  }
  linalg::CsrMatrix out = linalg::CsrMatrix::for_appending(src.cols());
  for (std::size_t row : rows) {
    const linalg::SparseRowView view = src.sparse_features().row(row);
    linalg::SparseVector copy;
    for (std::size_t k = 0; k < view.nnz(); ++k) {
      copy.push_back(view.indices[k], view.values[k]);
    }
    out.append_row(copy);
  }
  return Dataset(src.name() + suffix, std::move(out), std::move(labels));
}

}  // namespace

TrainTestSplit train_test_split(const Dataset& dataset, double test_fraction,
                                std::uint64_t seed) {
  const std::size_t n = dataset.rows();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  // Fisher–Yates with the library's deterministic stream.
  support::RngStream rng(seed);
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.next_below(i));
    std::swap(order[i - 1], order[j]);
  }

  std::size_t test_count =
      static_cast<std::size_t>(std::llround(test_fraction * static_cast<double>(n)));
  if (n >= 2) test_count = std::clamp<std::size_t>(test_count, 1, n - 1);

  const std::vector<std::size_t> test_rows(order.begin(),
                                           order.begin() + static_cast<std::ptrdiff_t>(test_count));
  const std::vector<std::size_t> train_rows(order.begin() + static_cast<std::ptrdiff_t>(test_count),
                                            order.end());
  return TrainTestSplit{gather_rows(dataset, train_rows, "/train"),
                        gather_rows(dataset, test_rows, "/test")};
}

double rmse(const Dataset& dataset, const linalg::DenseVector& w) {
  const std::size_t n = dataset.rows();
  if (n == 0) return 0.0;
  double total = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    const double residual = dataset.row(r).dot(w.span()) - dataset.labels()[r];
    total += residual * residual;
  }
  return std::sqrt(total / static_cast<double>(n));
}

double sign_accuracy(const Dataset& dataset, const linalg::DenseVector& w) {
  const std::size_t n = dataset.rows();
  if (n == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t r = 0; r < n; ++r) {
    const double margin = dataset.row(r).dot(w.span());
    const double predicted = margin >= 0.0 ? 1.0 : -1.0;
    const double actual = dataset.labels()[r] >= 0.0 ? 1.0 : -1.0;
    if (predicted == actual) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

double r_squared(const Dataset& dataset, const linalg::DenseVector& w) {
  const std::size_t n = dataset.rows();
  if (n == 0) return 0.0;
  double mean = 0.0;
  for (std::size_t r = 0; r < n; ++r) mean += dataset.labels()[r];
  mean /= static_cast<double>(n);

  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    const double y = dataset.labels()[r];
    const double residual = dataset.row(r).dot(w.span()) - y;
    ss_res += residual * residual;
    ss_tot += (y - mean) * (y - mean);
  }
  return ss_tot == 0.0 ? 0.0 : 1.0 - ss_res / ss_tot;
}

}  // namespace asyncml::data
