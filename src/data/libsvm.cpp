#include "data/libsvm.hpp"

#include <charconv>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace asyncml::data {

using support::Status;
using support::StatusCode;
using support::StatusOr;

namespace {

/// Parses a double from a string_view; returns false on malformed input.
bool parse_double(std::string_view text, double& out) {
  // std::from_chars(double) is available in libstdc++ >= 11.
  const auto result = std::from_chars(text.data(), text.data() + text.size(), out);
  return result.ec == std::errc{} && result.ptr == text.data() + text.size();
}

bool parse_u32(std::string_view text, std::uint32_t& out) {
  const auto result = std::from_chars(text.data(), text.data() + text.size(), out);
  return result.ec == std::errc{} && result.ptr == text.data() + text.size();
}

/// Splits off the next whitespace-delimited token; empty when exhausted.
std::string_view next_token(std::string_view& rest) {
  std::size_t start = 0;
  while (start < rest.size() && (rest[start] == ' ' || rest[start] == '\t')) ++start;
  std::size_t end = start;
  while (end < rest.size() && rest[end] != ' ' && rest[end] != '\t') ++end;
  std::string_view token = rest.substr(start, end - start);
  rest.remove_prefix(end);
  return token;
}

}  // namespace

StatusOr<Dataset> read_libsvm(std::istream& in, std::string name,
                              const LibsvmOptions& options) {
  std::vector<linalg::SparseVector> rows;
  std::vector<double> labels;
  std::uint32_t max_index = 0;  // 1-based maximum seen

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view rest(line);
    // Strip comments.
    if (const auto hash = rest.find('#'); hash != std::string_view::npos) {
      rest = rest.substr(0, hash);
    }
    std::string_view label_token = next_token(rest);
    if (label_token.empty()) continue;  // blank line

    double label = 0.0;
    if (!parse_double(label_token, label)) {
      return Status(StatusCode::kInvalidArgument,
                    "libsvm line " + std::to_string(line_no) + ": bad label '" +
                        std::string(label_token) + "'");
    }

    linalg::SparseVector row;
    std::uint32_t prev_index = 0;
    for (std::string_view token = next_token(rest); !token.empty();
         token = next_token(rest)) {
      const auto colon = token.find(':');
      if (colon == std::string_view::npos) {
        return Status(StatusCode::kInvalidArgument,
                      "libsvm line " + std::to_string(line_no) +
                          ": feature token missing ':' in '" + std::string(token) + "'");
      }
      std::uint32_t index = 0;
      double value = 0.0;
      if (!parse_u32(token.substr(0, colon), index) || index == 0) {
        return Status(StatusCode::kInvalidArgument,
                      "libsvm line " + std::to_string(line_no) +
                          ": bad feature index (must be 1-based integer)");
      }
      if (!parse_double(token.substr(colon + 1), value)) {
        return Status(StatusCode::kInvalidArgument,
                      "libsvm line " + std::to_string(line_no) + ": bad feature value");
      }
      if (index <= prev_index) {
        return Status(StatusCode::kInvalidArgument,
                      "libsvm line " + std::to_string(line_no) +
                          ": indices must be strictly increasing");
      }
      prev_index = index;
      max_index = std::max(max_index, index);
      row.push_back(index - 1, value);  // store 0-based
    }
    rows.push_back(std::move(row));
    labels.push_back(label);
    if (options.max_rows != 0 && rows.size() >= options.max_rows) break;
  }

  std::size_t cols = options.num_features != 0 ? options.num_features : max_index;
  if (options.num_features != 0 && max_index > options.num_features) {
    return Status(StatusCode::kInvalidArgument,
                  "libsvm: feature index " + std::to_string(max_index) +
                      " exceeds declared num_features " +
                      std::to_string(options.num_features));
  }
  return Dataset(std::move(name), linalg::csr_from_rows(rows, cols),
                 linalg::DenseVector(std::move(labels)));
}

StatusOr<Dataset> load_libsvm(const std::string& path, const LibsvmOptions& options) {
  std::ifstream in(path);
  if (!in) {
    return Status(StatusCode::kNotFound, "libsvm: cannot open '" + path + "'");
  }
  return read_libsvm(in, path, options);
}

Status write_libsvm(std::ostream& out, const Dataset& dataset) {
  out.precision(17);
  for (std::size_t r = 0; r < dataset.rows(); ++r) {
    out << dataset.labels()[r];
    if (dataset.is_dense()) {
      const auto row = dataset.dense_features().row(r);
      for (std::size_t c = 0; c < row.size(); ++c) {
        if (row[c] != 0.0) out << ' ' << (c + 1) << ':' << row[c];
      }
    } else {
      const linalg::SparseRowView row = dataset.sparse_features().row(r);
      for (std::size_t k = 0; k < row.nnz(); ++k) {
        out << ' ' << (row.indices[k] + 1) << ':' << row.values[k];
      }
    }
    out << '\n';
  }
  if (!out) return Status(StatusCode::kInternal, "libsvm: write failed");
  return Status::ok();
}

Status save_libsvm(const std::string& path, const Dataset& dataset) {
  std::ofstream out(path);
  if (!out) {
    return Status(StatusCode::kInternal, "libsvm: cannot create '" + path + "'");
  }
  return write_libsvm(out, dataset);
}

}  // namespace asyncml::data
