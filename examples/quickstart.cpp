// Quickstart: asynchronous SGD in ~40 lines of application code.
//
// This is the paper's Algorithm 2 (ASGD) spelled out against the public API,
// with the correspondence marked line by line.  Run it:
//
//   ./build/example_quickstart
//
// It builds a synthetic least-squares problem, starts an 8-worker cluster
// with one slow worker, and optimizes asynchronously; the straggler never
// stalls progress.

#include <cstdio>

#include "asyncml.hpp"

using namespace asyncml;

int main() {
  // A synthetic least-squares problem with a known optimum (error == F(w)).
  const auto problem = data::synthetic::tiny(/*rows=*/2'000, /*cols=*/50,
                                             /*noise_std=*/0.0, /*seed=*/1);
  auto dataset = std::make_shared<const data::Dataset>(problem.dataset);

  // An 8-worker cluster (2-core executors) with worker 0 running half-speed.
  engine::Cluster::Config config;
  config.num_workers = 8;
  config.delay = std::make_shared<straggler::ControlledDelay>(0, /*intensity=*/1.0);
  engine::Cluster cluster(config);

  // The workload: dataset partitioned 16 ways + the loss.
  const optim::Workload workload =
      optim::Workload::create(dataset, /*num_partitions=*/16,
                              optim::make_least_squares());

  // Algorithm 2 of the paper maps onto SolverConfig + AsgdSolver:
  //   AC = new ASYNCcontext                 -> created inside the solver
  //   points.ASYNCbarrier(f, AC.STAT)       -> config.barrier
  //   .sample(b)                            -> config.batch_fraction
  //   .map(grad).ASYNCreduce(_+_, AC)       -> the solver's task factory
  //   while AC.hasNext(): ASYNCcollect()    -> the solver's update loop
  optim::SolverConfig solver;
  solver.updates = 1'200;
  solver.batch_fraction = 0.1;
  solver.step = optim::inverse_decay_step(0.05, 1.0, 0.002);
  solver.barrier = core::barriers::asp();  // fully asynchronous
  solver.eval_every = 100;

  const optim::RunResult result = optim::AsgdSolver::run(cluster, workload, solver);

  std::printf("ASGD finished: %llu updates in %.1f ms\n",
              static_cast<unsigned long long>(result.updates), result.wall_ms);
  std::printf("objective error: %.3e (0 = exact optimum)\n", result.final_error());
  std::printf("mean worker wait: %.3f ms  (stragglers don't stall the server)\n",
              result.mean_wait_ms);
  for (const metrics::TracePoint& p : result.trace) {
    std::printf("  t=%8.1f ms  update=%5llu  error=%.3e\n", p.time_ms,
                static_cast<unsigned long long>(p.update), p.error);
  }
  return result.final_error() < 1e-2 ? 0 : 1;
}
