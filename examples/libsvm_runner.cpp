// End-to-end runner for real LIBSVM files: drop in rcv1_full.binary, mnist8m
// or epsilon exactly as the paper used them.
//
//   ./build/example_libsvm_runner <file.libsvm> [algorithm] [workers]
//
// algorithm: sgd | asgd | saga | asaga | svrg   (default asgd)
// With no arguments it generates and saves a small synthetic LIBSVM file and
// runs on that, so the example is runnable out of the box.

#include <cstdio>
#include <cstring>
#include <string>

#include "asyncml.hpp"

using namespace asyncml;

namespace {

optim::RunResult run_algorithm(const std::string& algo, engine::Cluster& cluster,
                               const optim::Workload& workload,
                               optim::SolverConfig config) {
  if (algo == "sgd") return optim::SgdSolver::run(cluster, workload, config);
  if (algo == "saga") {
    config.step = optim::constant_step(0.05);
    return optim::SagaSolver::run(cluster, workload, config);
  }
  if (algo == "asaga") {
    config.step = optim::constant_step(0.05);
    config.updates *= cluster.num_workers();
    return optim::AsagaSolver::run(cluster, workload, config);
  }
  if (algo == "svrg") {
    config.step = optim::constant_step(0.05);
    config.updates *= cluster.num_workers();
    config.epoch_inner_updates = 100;
    return optim::EpochVrSolver::run(cluster, workload, config);
  }
  config.updates *= cluster.num_workers();
  return optim::AsgdSolver::run(cluster, workload, config);
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::string algo = argc > 2 ? argv[2] : "asgd";
  const int workers = argc > 3 ? std::atoi(argv[3]) : 8;

  if (argc > 1) {
    path = argv[1];
  } else {
    // No file given: synthesize one so the example runs standalone.
    path = "/tmp/asyncml_demo.libsvm";
    const auto problem = data::synthetic::make_sparse(
        data::synthetic::SparseSpec{
            .name = "demo", .rows = 2'000, .cols = 500, .density = 0.05},
        99);
    if (auto s = data::save_libsvm(path, problem.dataset); !s.is_ok()) {
      std::fprintf(stderr, "failed to write demo file: %s\n", s.to_string().c_str());
      return 1;
    }
    std::printf("no input given; wrote synthetic corpus to %s\n", path.c_str());
  }

  const auto loaded = data::load_libsvm(path);
  if (!loaded.is_ok()) {
    std::fprintf(stderr, "cannot load %s: %s\n", path.c_str(),
                 loaded.status().to_string().c_str());
    return 1;
  }
  auto dataset = std::make_shared<const data::Dataset>(std::move(loaded).value());
  std::printf("loaded %s: %zu rows, %zu features, density %.4f%%\n", path.c_str(),
              dataset->rows(), dataset->cols(), 100.0 * dataset->density());

  engine::Cluster::Config cluster_config;
  cluster_config.num_workers = workers;
  engine::Cluster cluster(cluster_config);
  const optim::Workload workload =
      optim::Workload::create(dataset, 4 * workers, optim::make_least_squares());

  optim::SolverConfig config;
  config.updates = 200;
  config.batch_fraction = 0.05;
  config.step = optim::inv_sqrt_step(0.1);
  config.eval_every = 25;

  const optim::RunResult result = run_algorithm(algo, cluster, workload, config);
  std::printf("\n%s on %d workers: %llu updates, %.1f ms, final objective %.4e\n",
              result.algorithm.c_str(), workers,
              static_cast<unsigned long long>(result.updates), result.wall_ms,
              result.final_error());
  std::printf("wire: %.2f MB broadcast, %.2f MB results, mean wait %.3f ms\n",
              result.broadcast_bytes / 1048576.0, result.result_bytes / 1048576.0,
              result.mean_wait_ms);
  return 0;
}
