// Variance-reduced training on an mnist8m-like image dataset with ASAGA.
//
// Demonstrates the ASYNCbroadcaster end-to-end: ASAGA's historical gradients
// are recomputed from cached model versions, so each round ships one model
// vector regardless of history depth.  The run reports the wire traffic so
// you can see the saving (compare with what a naive full-history broadcast
// would cost: sum over rounds of round × d × 8 bytes).

#include <cstdio>

#include "asyncml.hpp"

using namespace asyncml;

int main() {
  // mnist8m-like: dense pixel rows in [0,1], 784 features, cluster structure.
  auto problem = data::synthetic::mnist8m_like(/*seed=*/11, /*row_scale=*/0.5);
  auto dataset = std::make_shared<const data::Dataset>(std::move(problem.dataset));
  std::printf("images: %zu rows x %zu pixels (%.1f MB)\n", dataset->rows(),
              dataset->cols(), dataset->feature_bytes() / 1024.0 / 1024.0);

  engine::Cluster::Config config;
  config.num_workers = 8;
  config.delay = std::make_shared<straggler::ControlledDelay>(0, 0.6);
  engine::Cluster cluster(config);

  const optim::Workload workload =
      optim::Workload::create(dataset, 32, optim::make_least_squares());

  optim::SolverConfig solver;
  solver.updates = 1'500;
  solver.batch_fraction = 0.02;
  solver.step = optim::constant_step(0.004);
  solver.barrier = core::barriers::asp();
  solver.eval_every = 150;

  const optim::RunResult result = optim::AsagaSolver::run(cluster, workload, solver);

  std::printf("\nASAGA: %llu updates in %.1f ms\n",
              static_cast<unsigned long long>(result.updates), result.wall_ms);
  std::printf("objective error: %.3e\n", result.final_error());

  const double fetched_mb = result.broadcast_bytes / 1024.0 / 1024.0;
  // What Algorithm 3 on stock Spark would have shipped per worker: the whole
  // parameter table, re-broadcast every round.
  double naive_bytes = 0.0;
  const double d_bytes = static_cast<double>(dataset->cols()) * sizeof(double);
  for (std::uint64_t k = 1; k <= result.updates; ++k) {
    naive_bytes += static_cast<double>(k) * d_bytes;
  }
  naive_bytes *= config.num_workers;
  std::printf("history traffic: %.1f MB fetched (cache hits: %llu)\n", fetched_mb,
              static_cast<unsigned long long>(result.broadcast_hits));
  std::printf("naive full-table broadcast would ship ~%.1f MB (%.0fx more)\n",
              naive_bytes / 1024.0 / 1024.0,
              naive_bytes / (result.broadcast_bytes + 1.0));

  // Success criterion: substantial reduction from the zero-model objective
  // (mnist-like pixel regression starts around 1e2; full convergence takes
  // more updates than a demo should spend).
  const double initial = result.trace.front().error;
  std::printf("objective reduced %.0f%% from the zero model\n",
              100.0 * (1.0 - result.final_error() / initial));
  return result.final_error() < 0.3 * initial ? 0 : 1;
}
