// Text classification on a sparse rcv1-like corpus with logistic loss.
//
// The scenario the paper's introduction motivates: a high-dimensional sparse
// dataset (Reuters newswire TF-IDF features) trained with an asynchronous
// method on a cluster with production stragglers.  Demonstrates:
//   * the sparse CSR path end-to-end,
//   * logistic regression (the framework is loss-generic even though the
//     paper's evaluation uses least squares),
//   * staleness-dependent learning rates (paper Listing 1).

#include <cstdio>

#include "asyncml.hpp"

using namespace asyncml;

int main() {
  // rcv1-like: 2000 docs, 5000 features, ~0.16% density, unit-norm rows.
  auto problem = data::synthetic::rcv1_like(/*seed=*/7);
  // Binarize labels for classification: sign of the regression target.
  linalg::DenseVector labels(problem.dataset.rows());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    labels[i] = problem.dataset.labels()[i] >= 0.0 ? 1.0 : -1.0;
  }
  auto dataset = std::make_shared<const data::Dataset>(
      data::Dataset("rcv1_like_binary", problem.dataset.sparse_features(), labels));

  std::printf("corpus: %zu documents, %zu features, density %.4f%%\n",
              dataset->rows(), dataset->cols(), 100.0 * dataset->density());

  // A 16-worker cluster drawn from the production straggler distribution.
  engine::Cluster::Config config;
  config.num_workers = 16;
  config.delay = std::make_shared<straggler::ProductionCluster>(16, /*seed=*/3);
  engine::Cluster cluster(config);

  const optim::Workload workload =
      optim::Workload::create(dataset, /*num_partitions=*/32, optim::make_logistic());

  optim::SolverConfig solver;
  solver.updates = 2'000;
  solver.batch_fraction = 0.05;
  solver.step = optim::constant_step(1.0);
  solver.staleness_adaptive_lr = true;  // Listing 1: lr / (1 + staleness)
  solver.barrier = core::barriers::ssp(32);
  solver.eval_every = 250;

  const optim::RunResult result = optim::AsgdSolver::run(cluster, workload, solver);

  std::printf("\n%s: %llu updates in %.1f ms (mean wait %.3f ms)\n",
              result.algorithm.c_str(),
              static_cast<unsigned long long>(result.updates), result.wall_ms,
              result.mean_wait_ms);
  std::printf("final mean logistic loss: %.4f (log 2 = %.4f is the chance level)\n",
              result.final_error(), 0.6931);

  // Training accuracy of the learned model.
  std::size_t correct = 0;
  for (std::size_t i = 0; i < dataset->rows(); ++i) {
    const double margin = dataset->row(i).dot(result.final_w.span());
    if ((margin >= 0.0 ? 1.0 : -1.0) == labels[i]) ++correct;
  }
  const double accuracy = static_cast<double>(correct) / dataset->rows();
  std::printf("training accuracy: %.1f%%\n", 100.0 * accuracy);
  return accuracy > 0.8 ? 0 : 1;
}
