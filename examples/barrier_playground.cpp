// Barrier-control playground: the paper's Listing 2 in runnable form.
//
// Runs the same ASGD problem under ASP, BSP, SSP and two *user-defined*
// barrier controls, printing throughput, wait time and convergence for each —
// the experiment workflow ASYNC is built to support ("practitioners need ...
// control over the execution environment").

#include <cstdio>

#include "asyncml.hpp"

using namespace asyncml;

int main() {
  const auto problem = data::synthetic::tiny(/*rows=*/2'000, /*cols=*/100,
                                             /*noise_std=*/0.0, /*seed=*/5);
  auto dataset = std::make_shared<const data::Dataset>(problem.dataset);
  const optim::Workload workload =
      optim::Workload::create(dataset, 16, optim::make_least_squares());

  // One long-tail straggler (4x) plus a mild one (1.5x) out of 8 workers.
  struct TwoStragglers final : engine::DelayModel {
    double multiplier(engine::WorkerId w, std::uint64_t) const override {
      if (w == 0) return 4.0;
      if (w == 1) return 1.5;
      return 1.0;
    }
    const char* name() const override { return "two-stragglers"; }
  };

  // Listing 2's strategies plus two custom ones.
  struct Entry {
    const char* name;
    core::BarrierControl barrier;
  };
  std::vector<Entry> entries;
  entries.push_back({"ASP   f: STAT.foreach(true)", core::barriers::asp()});
  entries.push_back({"BSP   f: Available_Workers == P", core::barriers::bsp()});
  entries.push_back({"SSP   f: MAX_Staleness < 8", core::barriers::ssp(8)});

  // Custom 1: skip workers whose EWMA task time exceeds 2x the cluster mean
  // (a completion-time barrier in the spirit of adaptive-sync strategies).
  entries.push_back(
      {"ctime f: avg_task <= 2x mean", core::barriers::completion_time_within(2.0)});

  // Custom 2: a fully hand-rolled predicate over AC.STAT — never give new
  // work to the known long-tail worker 0.
  core::BarrierControl no_worker0;
  no_worker0.name = "custom";
  no_worker0.filter = [](const core::WorkerStat& w, const core::StatSnapshot&) {
    return w.id != 0;
  };
  entries.push_back({"cust  f: worker.id != 0", no_worker0});

  std::printf("%-34s %10s %12s %12s %12s\n", "barrier", "wall ms", "updates/s",
              "final err", "wait ms");
  for (const Entry& entry : entries) {
    engine::Cluster::Config config;
    config.num_workers = 8;
    config.delay = std::make_shared<TwoStragglers>();
    engine::Cluster cluster(config);

    optim::SolverConfig solver;
    solver.updates = 600;
    solver.batch_fraction = 0.1;
    solver.step = optim::constant_step(0.003);
    solver.barrier = entry.barrier;
    solver.eval_every = 100;

    const optim::RunResult r = optim::AsgdSolver::run(cluster, workload, solver);
    std::printf("%-34s %10.1f %12.1f %12.3e %12.3f\n", entry.name, r.wall_ms,
                1e3 * static_cast<double>(r.updates) / r.wall_ms, r.final_error(),
                r.mean_wait_ms);
  }
  std::printf("\nASP maximizes throughput; BSP pays the 4x straggler at every "
              "round; the custom filters dodge it entirely.\n");
  return 0;
}
