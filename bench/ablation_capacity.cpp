// Ablation A3 — executor capacity (cores per worker).
//
// ASYNC inherits Spark's executor model: each worker runs C concurrent
// tasks, and the ASYNCscheduler keeps at most C of a worker's partitions in
// flight.  Capacity trades throughput against staleness: more in-flight
// tasks keep cores busier but each result is computed against an older
// model.  The paper fixes C = 2 (its executors run 2 cores); this ablation
// shows why that knob matters — the mechanism behind the scheduler's
// capacity-aware dispatch (DESIGN.md §5).

#include <iostream>

#include "harness.hpp"

using namespace asyncml;

int main() {
  bench::banner("Ablation A3: executor capacity (cores per worker) for ASGD",
                "higher capacity raises throughput and staleness; convergence "
                "per update degrades gracefully");

  constexpr int kWorkers = 8;
  constexpr int kPartitions = 32;
  const bench::BenchDataset ds = bench::load_dataset("epsilon", /*row_scale=*/1.0);
  const optim::Workload workload =
      optim::Workload::create(ds.data, kPartitions, optim::make_least_squares());

  metrics::Table table(
      {"cores/worker", "in-flight cap", "wall ms", "updates/s", "final err"});
  std::vector<std::string> rows;

  for (int cores : {1, 2, 4}) {
    engine::Cluster::Config config = bench::cluster_config(kWorkers);
    config.cores_per_worker = cores;
    engine::Cluster cluster(config);

    bench::RunPlan plan =
        bench::make_plan(ds, /*saga=*/false, /*sync_iterations=*/20, kPartitions,
                         /*seed=*/43, /*service_floor_ms=*/4.0);
    const optim::RunResult result =
        optim::AsgdSolver::run(cluster, workload, plan.async_config);

    const double ups = result.wall_ms > 0
                           ? 1e3 * static_cast<double>(result.updates) / result.wall_ms
                           : 0.0;
    std::ostringstream os;
    os << cores << ',' << kWorkers * cores << ',' << result.wall_ms << ',' << ups
       << ',' << result.final_error();
    rows.push_back(os.str());
    table.add_row({std::to_string(cores), std::to_string(kWorkers * cores),
                   metrics::Table::num(result.wall_ms, 4), metrics::Table::num(ups, 4),
                   metrics::Table::num(result.final_error())});
  }

  bench::write_csv("ablation_capacity.csv",
                   "cores,inflight_cap,wall_ms,updates_per_s,final_err", rows);
  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nshape check: updates/s grows with capacity (more parallel "
               "service); final err stays the same order (staleness absorbed by "
               "the step heuristic).\n";
  return 0;
}
