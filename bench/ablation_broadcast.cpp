// Ablation A1 — the ASYNCbroadcaster's communication saving (paper §4.3 and
// Algorithm 3's red line).
//
// Naive Spark SAGA broadcasts the ENTIRE table of past model parameters
// every iteration: at iteration k each worker fetches O(k·d) bytes, so total
// traffic is O(k²·d).  ASYNC's SAGA ships only version ids; each worker
// fetches each model version once, keeping traffic O(k·d).  Both solvers run
// the same math on the same batches (trajectories coincide), so the only
// difference is wire traffic and the wall-clock it costs.

#include <iostream>

#include "harness.hpp"

using namespace asyncml;

int main() {
  bench::banner("Ablation A1: ASYNCbroadcast vs naive full-table broadcast (SAGA)",
                "naive broadcast bytes grow ~quadratically with iterations; "
                "ASYNCbroadcast stays linear; same convergence");

  constexpr int kWorkers = 8;
  constexpr int kPartitions = 16;
  const bench::BenchDataset ds = bench::load_dataset("epsilon", /*row_scale=*/0.5);
  const optim::Workload workload =
      optim::Workload::create(ds.data, kPartitions, optim::make_least_squares());

  metrics::Table table({"iterations", "ASYNC bytes", "naive bytes", "bytes ratio",
                        "ASYNC wall ms", "naive wall ms", "|err diff|"});
  std::vector<std::string> rows;

  for (std::uint64_t iterations : {10u, 20u, 40u, 80u}) {
    bench::RunPlan plan =
        bench::make_plan(ds, /*saga=*/true, iterations, kPartitions, /*seed=*/37);

    engine::Cluster c1(bench::cluster_config(kWorkers));
    const optim::RunResult efficient =
        optim::SagaSolver::run(c1, workload, plan.sync_config);

    engine::Cluster c2(bench::cluster_config(kWorkers));
    const optim::RunResult naive =
        optim::NaiveSagaSolver::run(c2, workload, plan.sync_config);

    const double ratio = efficient.broadcast_bytes > 0
                             ? static_cast<double>(naive.broadcast_bytes) /
                                   static_cast<double>(efficient.broadcast_bytes)
                             : 0.0;
    std::ostringstream os;
    os << iterations << ',' << efficient.broadcast_bytes << ','
       << naive.broadcast_bytes << ',' << efficient.wall_ms << ',' << naive.wall_ms;
    rows.push_back(os.str());
    table.add_row(
        {std::to_string(iterations), std::to_string(efficient.broadcast_bytes),
         std::to_string(naive.broadcast_bytes), metrics::Table::num(ratio, 3),
         metrics::Table::num(efficient.wall_ms, 4), metrics::Table::num(naive.wall_ms, 4),
         metrics::Table::num(
             std::abs(efficient.final_error() - naive.final_error()))});
  }

  bench::write_csv("ablation_broadcast.csv",
                   "iterations,async_bytes,naive_bytes,async_ms,naive_ms", rows);
  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nshape check: the bytes ratio grows with the iteration count "
               "(quadratic vs linear traffic) and |err diff| ~ 0 (same math).\n";
  return 0;
}
