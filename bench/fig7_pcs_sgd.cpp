// Figure 7 — "The performance of ASGD and SGD in ASYNC on 32 workers" under
// Production Cluster Straggler patterns.
//
// PCS (paper §6.3): 25% of the 32 workers straggle — 6 with uniform delay in
// [150%, 250%] of mean task time, 2 long-tail in (250%, 10x]; seeds fixed.
// b = 1%.  Expected shape: ASGD converges considerably faster — 3x on
// mnist8m, 4x on epsilon.

#include <iostream>

#include "harness.hpp"

using namespace asyncml;

int main() {
  bench::banner(
      "Figure 7: ASGD vs SGD on 32 workers with production-cluster stragglers",
      "ASGD reaches the target error ~3x faster (mnist8m) / ~4x (epsilon)");

  constexpr int kWorkers = 32;
  constexpr int kPartitions = 32;
  constexpr std::uint64_t kIterations = 30;

  metrics::Table summary({"dataset", "SGD wall ms", "ASGD wall ms", "ASGD+SS wall ms",
                          "SGD err", "ASGD err", "ASGD+SS err",
                          "speedup(ASGD vs SGD)", "SS stolen/spec/dup"});
  std::vector<std::string> rows;

  for (const std::string& name : {std::string("mnist8m"), std::string("epsilon")}) {
    bench::BenchDataset ds = bench::load_dataset(name, /*row_scale=*/2.0);
    ds.sgd_fraction = 0.01;  // paper PCS setup: b = 1%
    const optim::Workload workload =
        optim::Workload::create(ds.data, kPartitions, optim::make_least_squares());
    const bench::RunPlan plan =
        bench::make_plan(ds, /*saga=*/false, kIterations, kPartitions, /*seed=*/23);

    // Fixed seed: the same straggler assignment across the pair (the paper
    // fixes the randomized delay seed across repetitions).
    auto pcs = std::make_shared<straggler::ProductionCluster>(kWorkers, 2026);

    engine::Cluster sync_cluster(bench::cluster_config(kWorkers, pcs));
    const optim::RunResult sync =
        optim::SgdSolver::run(sync_cluster, workload, plan.sync_config);

    engine::Cluster async_cluster(bench::cluster_config(kWorkers, pcs));
    const optim::RunResult async_run =
        optim::AsgdSolver::run(async_cluster, workload, plan.async_config);

    // ASGD with dynamic placement: the median-anchored barrier shuns the
    // long-tail stragglers, work stealing migrates their partitions to
    // healthy workers (so no partition starves), and overdue tasks get
    // speculative replicas (docs/SCHEDULING.md). Honest expectation: plain
    // ASGD under ASP is capacity-bound, not barrier-gated, so this does NOT
    // beat its wall clock (the shunned workers' cores stop contributing);
    // the win is statistical — no partition starves and no 10x-stale
    // long-tail gradients land, so the final error edges lower.
    optim::SolverConfig ss_config = plan.async_config;
    ss_config.barrier = core::barriers::median_completion_within(2.5);
    ss_config.steal_mode = core::StealMode::kLocality;
    ss_config.speculation_factor = 2.0;
    engine::Cluster ss_cluster(bench::cluster_config(kWorkers, pcs));
    const optim::RunResult ss = optim::AsgdSolver::run(ss_cluster, workload, ss_config);

    for (const std::string& r : bench::trace_rows(name + "-Sync", sync.trace)) {
      rows.push_back(r);
    }
    for (const std::string& r : bench::trace_rows(name + "-ASYNC", async_run.trace)) {
      rows.push_back(r);
    }
    for (const std::string& r : bench::trace_rows(name + "-ASYNC-SS", ss.trace)) {
      rows.push_back(r);
    }
    summary.add_row({name, metrics::Table::num(sync.wall_ms, 4),
                     metrics::Table::num(async_run.wall_ms, 4),
                     metrics::Table::num(ss.wall_ms, 4),
                     metrics::Table::num(sync.final_error()),
                     metrics::Table::num(async_run.final_error()),
                     metrics::Table::num(ss.final_error()),
                     bench::speedup_str(sync.trace, async_run.trace),
                     std::to_string(ss.partitions_stolen) + "/" +
                         std::to_string(ss.tasks_speculated) + "/" +
                         std::to_string(ss.duplicates_dropped)});
  }

  bench::write_csv("fig7.csv", "series,time_ms,update,error", rows);
  std::cout << "\n";
  summary.print(std::cout);
  std::cout << "\nshape check: ASGD speedup should be >=2x on both datasets "
               "(paper: 3x mnist8m, 4x epsilon). ASGD+SS: tens of one-time "
               "steals off the long tail, final err <= plain ASGD's, wall "
               "clock modestly higher (shunned cores idle).\n";
  return 0;
}
