// Microbenchmark — the sharded model plane's routing/scatter/assembly path.
//
// Three costs a sharded plane (docs/SHARDING.md) adds or removes versus the
// single-store reference, swept over S ∈ {2, 4, 8} at dim 16384:
//   * route:    ShardMap::shard_of/local_of over a sparse support list — the
//               per-coordinate routing arithmetic gradient scatter pays;
//   * scatter:  GradVector::split_ranges + merge_from round-trip along the
//               range bounds — the tree-aggregation epilogue's reshuffle;
//   * resolve:  materializing a version from per-shard delta chains, masked
//               (a one-shard support set, the sparse-workload fast path) vs
//               the full S-shard assembly, with the modeled wire bytes a warm
//               worker pays for the v−1 → v step in each mode.
//
// Like bench_micro_grad_batch this doubles as an invariant check: the masked
// and full assemblies must be bit-identical to the unsharded store's
// materialization, and the process exits 1 when they are not, so the CI
// bench-perf job fails hard on a sharding correctness break.

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <sstream>
#include <vector>

#include "core/shard_map.hpp"
#include "harness.hpp"
#include "linalg/grad_vector.hpp"
#include "store/model_cache.hpp"
#include "store/model_store.hpp"
#include "store/sharded_store.hpp"

using namespace asyncml;

namespace {

constexpr std::size_t kDim = 16384;
constexpr engine::Version kVersions = 32;
constexpr std::size_t kTouchesPerVersion = 32;  // ~0.2% update density
constexpr int kPasses = 6;                      // first pass warms, 5 measured

/// Identical sparse churn into any store with a publish(w, v) method.
template <typename Store>
void publish_churn(Store& model_store) {
  support::RngStream rng(7);
  linalg::DenseVector w(kDim);
  for (engine::Version v = 0; v < kVersions; ++v) {
    for (std::size_t t = 0; t < kTouchesPerVersion; ++t) {
      w[rng.next_below(kDim)] += rng.uniform(-1.0, 1.0);
    }
    model_store.publish(w, v);
  }
}

/// Modeled wire bytes a worker holding version v−1 pays to materialize the
/// chain head of one shard (micro_model_store's warm-worker step).
std::uint64_t shard_step_bytes(const engine::BroadcastStore& broadcasts,
                               store::ModelStore& shard, engine::Version head) {
  const auto at_head = shard.latest_at_or_below(head);
  const auto at_prev = shard.latest_at_or_below(head - 1);
  if (!at_head.has_value() || !at_prev.has_value()) return 0;
  engine::NetworkModel net;
  net.time_scale = 0.0;
  engine::ClusterMetrics metrics(1);
  engine::BroadcastCache bcache(&broadcasts, &net, &metrics);
  store::VersionedModelCache cache(&shard, &bcache, &metrics);
  (void)cache.value_at(*at_prev);
  metrics.broadcast_bytes.reset();
  (void)cache.value_at(*at_head);
  return metrics.broadcast_bytes.load();
}

struct CaseResult {
  double route_ns = 0.0;        ///< per routed support list (4096 coords)
  double split_merge_ns = 0.0;  ///< per split+merge round-trip
  double masked_resolve_ns = 0.0;
  double full_resolve_ns = 0.0;
  std::uint64_t masked_step_bytes = 0;
  std::uint64_t full_step_bytes = 0;
  bool bit_identical = true;
};

CaseResult run_case(std::uint32_t num_shards) {
  CaseResult out;
  const core::ShardMap map(kDim, num_shards, core::ShardScheme::kRange);

  // ---- route: shard_of/local_of over a sparse support list. ---------------
  {
    support::RngStream rng(11);
    std::vector<std::uint32_t> coords(4096);
    for (auto& c : coords) c = static_cast<std::uint32_t>(rng.next_below(kDim));
    std::uint64_t sink = 0;
    const int iters = 2000;
    support::Stopwatch watch;
    for (int it = 0; it < iters; ++it) {
      for (const std::uint32_t c : coords) {
        sink += map.shard_of(c) + map.local_of(c);
      }
    }
    out.route_ns = watch.elapsed_ms() * 1e6 / iters;
    if (sink == 0) std::cout << "";  // keep the routing observable
  }

  // ---- scatter: split_ranges + merge_from along the range bounds. ---------
  {
    const linalg::GradVectorConfig cfg(kDim, /*densify_threshold=*/1.0,
                                       /*start_dense=*/false);
    support::RngStream rng(13);
    linalg::GradVector g(cfg);
    std::vector<std::uint32_t> support_coords(kTouchesPerVersion);
    for (auto& c : support_coords) c = static_cast<std::uint32_t>(rng.next_below(kDim));
    std::sort(support_coords.begin(), support_coords.end());
    support_coords.erase(
        std::unique(support_coords.begin(), support_coords.end()),
        support_coords.end());
    for (const std::uint32_t c : support_coords) g.set(c, 0.5 + 0.001 * c);

    const int iters = 5000;
    support::Stopwatch watch;
    for (int it = 0; it < iters; ++it) {
      std::vector<linalg::GradVector> pieces = g.split_ranges(map.range_bounds());
      linalg::GradVector merged(cfg);
      for (std::size_t s = 0; s < pieces.size(); ++s) {
        merged.merge_from(pieces[s], map.range_bounds()[s]);
      }
      if (merged.nnz() != g.nnz()) out.bit_identical = false;
    }
    out.split_merge_ns = watch.elapsed_ms() * 1e6 / iters;
  }

  // ---- resolve: masked vs full assembly from per-shard delta chains. ------
  core::ShardSet mask;
  mask.ids = {0};
  store::StoreConfig sharded_cfg;
  sharded_cfg.num_shards = num_shards;
  double masked_ms = 0.0;
  double full_ms = 0.0;
  for (int pass = 0; pass < kPasses; ++pass) {
    engine::BroadcastStore masked_bcasts;
    store::ShardedModelStore masked_store(&masked_bcasts, sharded_cfg);
    publish_churn(masked_store);
    engine::BroadcastStore full_bcasts;
    store::ShardedModelStore full_store(&full_bcasts, sharded_cfg);
    publish_churn(full_store);

    support::Stopwatch masked_watch;
    for (engine::Version v = 0; v < kVersions; ++v) {
      (void)masked_store.value_at(v, &mask);
    }
    if (pass > 0) masked_ms += masked_watch.elapsed_ms();

    support::Stopwatch full_watch;
    for (engine::Version v = 0; v < kVersions; ++v) {
      (void)full_store.value_at(v);
    }
    if (pass > 0) full_ms += full_watch.elapsed_ms();

    if (pass == 0) {
      // Invariant + wire model, once: against the unsharded reference.
      engine::BroadcastStore ref_bcasts;
      store::ModelStore ref_store(&ref_bcasts);
      publish_churn(ref_store);
      for (engine::Version v = 0; v < kVersions; ++v) {
        const linalg::DenseVector& want = ref_store.driver_cache().value_at(v);
        const linalg::DenseVector& masked_got = masked_store.value_at(v, &mask);
        for (std::uint32_t local = 0; local < map.shard_dim(0); ++local) {
          const std::uint32_t i = map.global_of(0, local);
          if (masked_got[i] != want[i]) out.bit_identical = false;
        }
        const linalg::DenseVector& full_got = full_store.value_at(v);
        for (std::size_t i = 0; i < kDim; ++i) {
          if (full_got[i] != want[i]) out.bit_identical = false;
        }
      }
      out.masked_step_bytes =
          shard_step_bytes(masked_bcasts, masked_store.shard(0), kVersions - 1);
      for (std::uint32_t s = 0; s < num_shards; ++s) {
        out.full_step_bytes +=
            shard_step_bytes(full_bcasts, full_store.shard(s), kVersions - 1);
      }
    }
  }
  const double denom = static_cast<double>((kPasses - 1) * kVersions);
  out.masked_resolve_ns = masked_ms * 1e6 / denom;
  out.full_resolve_ns = full_ms * 1e6 / denom;
  return out;
}

}  // namespace

int main() {
  bench::banner("Micro: shard routing, scatter and masked assembly",
                "a sparse batch whose support touches one of S shards "
                "resolves and pays wire bytes for that shard alone");

  metrics::Table table({"S", "route ns", "split+merge ns", "resolve ns (masked)",
                        "resolve ns (full)", "step B (masked)", "step B (full)",
                        "bytes ratio"});
  std::vector<std::string> rows;
  std::vector<std::pair<std::string, double>> json;
  bool all_bit_identical = true;

  for (const std::uint32_t num_shards : {2u, 4u, 8u}) {
    const CaseResult r = run_case(num_shards);
    all_bit_identical = all_bit_identical && r.bit_identical;
    const double bytes_ratio =
        static_cast<double>(r.full_step_bytes) /
        static_cast<double>(std::max<std::uint64_t>(1, r.masked_step_bytes));

    const auto whole = [](double v) {
      return std::to_string(static_cast<long long>(v + 0.5));
    };
    table.add_row({std::to_string(num_shards), whole(r.route_ns),
                   whole(r.split_merge_ns), whole(r.masked_resolve_ns),
                   whole(r.full_resolve_ns), std::to_string(r.masked_step_bytes),
                   std::to_string(r.full_step_bytes),
                   metrics::Table::num(bytes_ratio, 3)});
    std::ostringstream os;
    os << num_shards << ',' << r.route_ns << ',' << r.split_merge_ns << ','
       << r.masked_resolve_ns << ',' << r.full_resolve_ns << ','
       << r.masked_step_bytes << ',' << r.full_step_bytes;
    rows.push_back(os.str());

    std::ostringstream key;
    key << "micro_shard_route.s" << num_shards;
    json.emplace_back(key.str() + ".route_ns", r.route_ns);
    json.emplace_back(key.str() + ".split_merge_ns", r.split_merge_ns);
    json.emplace_back(key.str() + ".masked_resolve_ns", r.masked_resolve_ns);
    json.emplace_back(key.str() + ".full_resolve_ns", r.full_resolve_ns);
    json.emplace_back(key.str() + ".bytes_ratio", bytes_ratio);
  }
  json.emplace_back("micro_shard_route.assembly.bit_identical",
                    all_bit_identical ? 1.0 : 0.0);

  bench::write_csv("micro_shard_route.csv",
                   "shards,route_ns,split_merge_ns,masked_resolve_ns,"
                   "full_resolve_ns,masked_step_bytes,full_step_bytes",
                   rows);
  bench::update_bench_json(json);
  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nshape check: masked resolution cost and step bytes stay "
               "roughly flat in S while the full assembly scales with it, so "
               "the bytes ratio grows ~linearly; route and split+merge are "
               "nanosecond-scale overheads.\n";
  if (!all_bit_identical) {
    std::cerr << "FAIL: sharded assembly diverged from the unsharded store\n";
    return 1;
  }
  return 0;
}
