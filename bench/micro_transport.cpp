// Microbenchmark — the transport layer's codec and wire costs.
//
// Four numbers the transport design hinges on (docs/TRANSPORT.md):
//
//   1. Frame codec throughput: ns to encode / decode a realistic
//      gradient-bearing result frame (rcv1-shaped sparse GradCount). The
//      codec sits on every socket-backend round trip, so it must stay
//      orders of magnitude under the ~60 µs loopback RTT it rides.
//   2. lz4 delta ratio: wire bytes / raw bytes for a delta-chain envelope
//      (micro_transport.lz4_delta.bytes_ratio). The sparse [index, float64]
//      stream is the compressible shape the delta chain ships all day.
//   3. Loopback RTT: min µs for a full ship_result round trip — encode,
//      socket, endpoint decode + canonical re-encode, ack, decode — over
//      Unix-socket and TCP backends with a real worker process.
//   4. Codec bit-identity (micro_transport.codec.bit_identical): the
//      encode∘decode∘encode invariant the conformance suite builds on,
//      enforced here with a hard exit 1 so the CI bench-perf job fails on
//      any canonicality regression.
//
// Results merge into bench_results/BENCH_micro.json; tools/bench_diff.py
// diffs them against the checked-in baseline.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <vector>

#include "harness.hpp"
#include "linalg/grad_vector.hpp"
#include "optim/payloads.hpp"
#include "store/model_delta.hpp"
#include "transport/frame.hpp"
#include "transport/transport.hpp"
#include "transport/wire.hpp"

using namespace asyncml;

namespace {

constexpr int kCodecIters = 2000;
constexpr int kRttIters = 400;
constexpr int kReps = 3;
constexpr std::uint32_t kDim = 47236;  // rcv1 feature count
constexpr std::uint32_t kNnz = 4000;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// The workhorse frame: a sparse GradCount result, rcv1-shaped.
engine::TaskResult make_result() {
  engine::TaskResult result;
  result.id = 7;
  result.worker = 0;
  result.partition = 3;
  result.seq = 12;
  result.model_version = 9;
  optim::GradCount gc;
  gc.grad = linalg::GradVector(linalg::GradVectorConfig(kDim, 0.9, false));
  for (std::uint32_t i = 0; i < kNnz; ++i) {
    gc.grad.set((i * 11u) % kDim, 0.125 * static_cast<double>(i % 97) - 6.0);
  }
  gc.count = 256;
  const std::size_t modeled = gc.grad.size_bytes();
  result.payload = engine::Payload::wrap(std::move(gc), modeled);
  result.compute_ms = 0.5;
  result.service_ms = 2.0;
  return result;
}

// A delta-chain envelope: the lz4 path's daily bread.
std::vector<std::uint8_t> make_delta_envelope() {
  store::ModelDelta delta;
  delta.parent = 41;
  delta.values = linalg::GradVector(linalg::GradVectorConfig(kDim, 0.9, false));
  for (std::uint32_t i = 0; i < kNnz; ++i) {
    delta.values.set((i * 13u) % kDim, 1.0 / (1.0 + static_cast<double>(i % 53)));
  }
  const std::size_t modeled = delta.wire_bytes();
  return transport::encode_payload_envelope(
      engine::Payload::wrap(std::move(delta), modeled));
}

/// Min-µs ship_result RTT over a freshly started 1-worker transport.
double measure_rtt_us(transport::Backend backend, const engine::TaskResult& result) {
  transport::TransportConfig config;
  config.backend = backend;
  auto transport = transport::make_transport(config, /*num_workers=*/1,
                                             /*network=*/nullptr, /*metrics=*/nullptr);
  if (support::Status s = transport->start(); !s.is_ok()) {
    std::cerr << "FAIL: transport start (" << transport::backend_name(backend)
              << "): " << s.to_string() << "\n";
    std::exit(1);
  }
  double min_us = 0.0;
  for (int i = 0; i < kRttIters; ++i) {
    auto receipt = transport->channel(0).ship_result(result);
    if (!receipt.is_ok()) {
      std::cerr << "FAIL: ship_result (" << transport::backend_name(backend)
                << "): " << receipt.status().to_string() << "\n";
      std::exit(1);
    }
    const double us = static_cast<double>(receipt.value().wire_ns) * 1e-3;
    min_us = i == 0 ? us : std::min(min_us, us);
  }
  transport->stop();
  return min_us;
}

}  // namespace

int main() {
  bench::banner("Micro: transport codec and wire costs",
                "frame codec stays far under the loopback RTT it rides; the "
                "lz4 delta chain compresses; encode∘decode∘encode is "
                "byte-identical");

  const engine::TaskResult result = make_result();
  const transport::TaskResultMsg msg = transport::to_wire(result);
  const std::vector<std::uint8_t> body = transport::encode_task_result(msg);
  const std::vector<std::uint8_t> frame = transport::encode_frame(
      static_cast<std::uint8_t>(transport::FrameKind::kTaskResult), body);

  // 1. Codec throughput, min-of-k over kCodecIters batches.
  double encode_ns = 0.0;
  double decode_ns = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    double t0 = now_ms();
    for (int i = 0; i < kCodecIters; ++i) {
      const auto encoded = transport::encode_frame(
          static_cast<std::uint8_t>(transport::FrameKind::kTaskResult),
          transport::encode_task_result(msg));
      if (encoded.size() != frame.size()) std::exit(1);
    }
    const double enc = (now_ms() - t0) * 1e6 / kCodecIters;
    encode_ns = rep == 0 ? enc : std::min(encode_ns, enc);

    t0 = now_ms();
    for (int i = 0; i < kCodecIters; ++i) {
      transport::FrameDecoder decoder(64ull << 20);
      std::vector<transport::Frame> frames;
      if (!decoder.feed(frame, frames).is_ok() || frames.size() != 1) std::exit(1);
      transport::TaskResultMsg out;
      const auto bytes = frames[0].message_bytes();
      if (!bytes.is_ok() ||
          !transport::decode_task_result(bytes.value(), out).is_ok()) {
        std::exit(1);
      }
    }
    const double dec = (now_ms() - t0) * 1e6 / kCodecIters;
    decode_ns = rep == 0 ? dec : std::min(decode_ns, dec);
  }

  // 2. lz4 delta ratio: wire body vs raw envelope.
  const std::vector<std::uint8_t> envelope = make_delta_envelope();
  const std::vector<std::uint8_t> lz4_frame = transport::encode_frame_lz4(
      static_cast<std::uint8_t>(transport::FrameKind::kModelDelta), envelope);
  const double raw_bytes = static_cast<double>(envelope.size());
  const double wire_bytes =
      static_cast<double>(lz4_frame.size() - transport::kFrameHeaderBytes);
  // Savings factor, raw/wire — higher is better, matching the other
  // *.bytes_ratio keys bench_diff.py knows how to orient.
  const double ratio = raw_bytes / wire_bytes;

  // 3. Loopback RTT through a real worker process.
  const double uds_us = measure_rtt_us(transport::Backend::kUnixSocket, result);
  const double tcp_us = measure_rtt_us(transport::Backend::kTcp, result);

  // 4. Bit-identity: decode the recorded frames and re-encode canonically.
  bool bit_identical = true;
  {
    const auto reencoded =
        transport::reencode_message(transport::FrameKind::kTaskResult, body);
    bit_identical = reencoded.is_ok() && reencoded.value() == body;
    transport::FrameDecoder decoder(64ull << 20);
    std::vector<transport::Frame> frames;
    if (!decoder.feed(lz4_frame, frames).is_ok() || frames.size() != 1) {
      bit_identical = false;
    } else {
      const auto env_bytes = frames[0].message_bytes();
      bit_identical = bit_identical && env_bytes.is_ok() &&
                      env_bytes.value() == envelope;
    }
  }

  metrics::Table table({"metric", "value"});
  table.add_row({"result frame bytes", std::to_string(frame.size())});
  table.add_row({"encode ns/frame", metrics::Table::num(encode_ns, 1)});
  table.add_row({"decode ns/frame", metrics::Table::num(decode_ns, 1)});
  table.add_row({"lz4 delta ratio", metrics::Table::num(ratio, 4)});
  table.add_row({"unix-socket RTT us", metrics::Table::num(uds_us, 1)});
  table.add_row({"tcp RTT us", metrics::Table::num(tcp_us, 1)});
  table.add_row({"codec bit-identical", bit_identical ? "yes" : "NO"});
  std::cout << "\n";
  table.print(std::cout);

  bench::update_bench_json({
      {"micro_transport.codec.encode_ns", encode_ns},
      {"micro_transport.codec.decode_ns", decode_ns},
      {"micro_transport.codec.frame_bytes", static_cast<double>(frame.size())},
      {"micro_transport.codec.bit_identical", bit_identical ? 1.0 : 0.0},
      {"micro_transport.lz4_delta.raw_bytes", raw_bytes},
      {"micro_transport.lz4_delta.wire_bytes", wire_bytes},
      {"micro_transport.lz4_delta.bytes_ratio", ratio},
      {"micro_transport.rtt.unix_socket_us", uds_us},
      {"micro_transport.rtt.tcp_us", tcp_us},
  });

  if (!bit_identical) {
    std::cerr << "FAIL: encode∘decode∘encode is not byte-identical — the "
                 "canonical-encoding invariant is broken\n";
    return 1;
  }
  if (ratio <= 1.0) {
    std::cerr << "FAIL: lz4 made the delta envelope bigger (savings ratio "
              << ratio << ") — the compressible-shape assumption is broken\n";
    return 1;
  }
  std::cout << "\nshape check: codec ns/frame sits below the socket RTT it "
               "rides; the delta chain compresses (> 1x); bit-identity "
               "holds.\n";
  return 0;
}
