#include "harness.hpp"
#include <cmath>
#include <cstdlib>
#include <limits>

#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <iterator>
#include <map>
#include <sstream>

namespace asyncml::bench {

namespace {

/// Rough per-sample smoothness: for least squares L_sample ≈ 2·E[‖x‖²].
double mean_row_norm_sq(const data::Dataset& d) {
  double total = 0.0;
  const std::size_t probe = std::min<std::size_t>(d.rows(), 512);
  for (std::size_t r = 0; r < probe; ++r) total += d.row(r).norm_squared();
  return probe == 0 ? 1.0 : total / static_cast<double>(probe);
}

/// Empirical step tuning — the paper's §6.1 ("we tune the initial step size
/// α ... so it converges faster to the optimal solution"), reproduced as a
/// geometric grid search over short *serial* runs. The grid is anchored at
/// the conservative 1/L_sample bound and extends upward, because for
/// well-conditioned data (normalized rows) the full-objective smoothness is
/// far below the per-sample bound and much larger steps are optimal.
double tune_step(const data::Dataset& dataset, const optim::Loss& loss,
                 double fraction, bool saga) {
  const double base = 0.25 / std::max(1e-12, 2.0 * mean_row_norm_sq(dataset));
  double best_step = base;
  double best_err = std::numeric_limits<double>::infinity();
  for (int k = 0; k < 13; ++k) {
    const double step = base * static_cast<double>(1 << k);
    const linalg::DenseVector w =
        saga ? optim::serial_saga(dataset, loss, 60, fraction, step, /*seed=*/5)
             : optim::serial_sgd(dataset, loss, 40, fraction,
                                 optim::inv_sqrt_step(step), /*seed=*/5);
    const double err = optim::full_objective(dataset, loss, w);
    if (std::isfinite(err) && err < best_err) {
      best_err = err;
      best_step = step;
    }
  }
  // Back off from the greedy winner: an exhaustive search rides the edge of
  // the stability region, where the paper's untuned async step heuristic
  // (α/workers) has no safety margin. A coarse manual grid — what the paper
  // actually did — lands a factor of a few below the edge; reproduce that.
  return best_step / 4.0;
}

}  // namespace

BenchDataset load_dataset(const std::string& name, double row_scale) {
  BenchDataset out;
  out.name = name;
  data::synthetic::Problem problem;
  if (name == "rcv1") {
    problem = data::synthetic::rcv1_like(101, row_scale);
    out.sgd_fraction = 0.05;   // paper: b = 5% for rcv1 SGD
    out.saga_fraction = 0.02;  // paper: b = 2% for rcv1 SAGA
  } else if (name == "mnist8m") {
    problem = data::synthetic::mnist8m_like(102, row_scale);
    out.sgd_fraction = 0.10;   // paper: b = 10%
    out.saga_fraction = 0.01;  // paper: b = 1%
  } else if (name == "epsilon") {
    problem = data::synthetic::epsilon_like(103, row_scale);
    out.sgd_fraction = 0.10;   // paper: b = 10%
    out.saga_fraction = 0.10;  // paper: b = 10%
  } else {
    std::cerr << "unknown dataset " << name << "\n";
    std::abort();
  }
  out.data = std::make_shared<const data::Dataset>(std::move(problem.dataset));

  const optim::LeastSquaresLoss loss;
  out.sgd_step = tune_step(*out.data, loss, out.sgd_fraction, /*saga=*/false);
  out.saga_step = tune_step(*out.data, loss, out.saga_fraction, /*saga=*/true);
  std::cout << "  [tuned] " << out.name << ": sgd_step=" << out.sgd_step
            << " saga_step=" << out.saga_step << "\n";
  return out;
}

std::vector<BenchDataset> all_datasets(double row_scale) {
  return {load_dataset("rcv1", row_scale), load_dataset("mnist8m", row_scale),
          load_dataset("epsilon", row_scale)};
}

engine::Cluster::Config cluster_config(int workers,
                                       std::shared_ptr<const engine::DelayModel> delay) {
  engine::Cluster::Config config;
  config.num_workers = workers;
  config.cores_per_worker = 2;  // the paper's executors run 2 cores
  config.delay = std::move(delay);
  // Realistic but cheap network: results/broadcasts cost tens of
  // microseconds; the SAGA full-table ablation makes this matter.
  config.network.latency_ms = 0.02;
  config.network.bandwidth_MBps = 2000.0;
  config.network.time_scale = 1.0;
  return config;
}

RunPlan make_plan(const BenchDataset& dataset, bool saga,
                  std::uint64_t sync_iterations, int partitions, std::uint64_t seed,
                  double service_floor_ms) {
  RunPlan plan;
  plan.partitions = partitions;

  optim::SolverConfig& sync = plan.sync_config;
  sync.updates = sync_iterations;
  sync.batch_fraction = saga ? dataset.saga_fraction : dataset.sgd_fraction;
  sync.step = saga ? optim::constant_step(dataset.saga_step)
                   : optim::inv_sqrt_step(dataset.sgd_step);
  sync.seed = seed;
  sync.service_floor_ms = service_floor_ms;
  sync.eval_every = std::max<std::uint64_t>(1, sync_iterations / 30);

  plan.async_config = sync;
  // The async run gets 2x the sync task count: asynchronous updates are
  // individually noisier (statistical efficiency, §3), so the paper's async
  // runs also execute more iterations before reaching the common target —
  // the comparison metric is wall-clock time at equal error, not task count.
  plan.async_config.updates =
      2 * sync_iterations * static_cast<std::uint64_t>(partitions);
  plan.async_config.eval_every =
      std::max<std::uint64_t>(1, plan.async_config.updates / 30);
  // Per-result step scale. The paper's §6.1 heuristic divides by the worker
  // count; we divide by the partition count so one asynchronous round (P
  // results × α/P) applies the same aggregate step as one synchronous
  // iteration (one averaged update × α) — with P = W in the paper's PCS
  // setup the two are identical, and with P = 4W in the CDS setup this keeps
  // the statistical comparison step-balanced so the figures isolate the
  // hardware-efficiency effect they are about.
  plan.async_config.async_step_scale = 1.0 / static_cast<double>(partitions);
  return plan;
}

std::string results_path(const std::string& file) {
  std::filesystem::create_directories("bench_results");
  return (std::filesystem::path("bench_results") / file).string();
}

void write_csv(const std::string& file, const std::string& header,
               const std::vector<std::string>& rows) {
  std::ofstream out(results_path(file));
  out << header << '\n';
  for (const std::string& row : rows) out << row << '\n';
  std::cout << "  [csv] bench_results/" << file << " (" << rows.size() << " rows)\n";
}

void update_bench_json(const std::vector<std::pair<std::string, double>>& values) {
  const std::string path = results_path("BENCH_micro.json");
  // Parse the existing flat {"key": number, ...} object (written by us, so a
  // minimal scanner suffices; a malformed file is simply rewritten).
  std::map<std::string, double> merged;
  if (std::ifstream in(path); in) {
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    std::size_t pos = 0;
    while ((pos = text.find('"', pos)) != std::string::npos) {
      const std::size_t close = text.find('"', pos + 1);
      if (close == std::string::npos) break;
      const std::string key = text.substr(pos + 1, close - pos - 1);
      const std::size_t colon = text.find(':', close);
      if (colon == std::string::npos) break;
      char* end = nullptr;
      const double value = std::strtod(text.c_str() + colon + 1, &end);
      if (end != text.c_str() + colon + 1) merged[key] = value;
      pos = close + 1;
    }
  }
  for (const auto& [key, value] : values) merged[key] = value;

  std::ofstream out(path);
  out << "{\n";
  bool first = true;
  for (const auto& [key, value] : merged) {
    if (!first) out << ",\n";
    first = false;
    out << "  \"" << key << "\": " << std::setprecision(12) << value;
  }
  out << "\n}\n";
  std::cout << "  [json] bench_results/BENCH_micro.json (" << merged.size()
            << " metrics)\n";
}

std::vector<std::string> trace_rows(const std::string& series,
                                    const metrics::Trace& trace) {
  std::vector<std::string> rows;
  rows.reserve(trace.size());
  for (const metrics::TracePoint& p : trace) {
    std::ostringstream os;
    os << series << ',' << p.time_ms << ',' << p.update << ',' << p.error;
    rows.push_back(os.str());
  }
  return rows;
}

void banner(const std::string& title, const std::string& paper_claim) {
  std::cout << "\n=== " << title << " ===\n";
  std::cout << "paper: " << paper_claim << "\n\n";
}

std::string speedup_str(const metrics::Trace& baseline, const metrics::Trace& contender) {
  const auto s = metrics::speedup_at_common_target(baseline, contender);
  if (!s.has_value()) return "n/a";
  std::ostringstream os;
  os.precision(2);
  os << std::fixed << *s << "x";
  return os.str();
}


std::string bcast_kb_str(const optim::RunResult& run) {
  return std::to_string(run.broadcast_bytes / 1024) + " (" +
         std::to_string(run.broadcast_base_bytes / 1024) + "+" +
         std::to_string(run.broadcast_delta_bytes / 1024) + ")";
}

}  // namespace asyncml::bench
