// Figure 3 (a–c) — "The performance of ASGD and SGD in ASYNC with 8 workers
// for different delay intensities of 0%, 30%, 60% and 100%."
//
// Controlled Delay Straggler: one of 8 workers is slowed by the delay
// intensity.  Expected shape (paper): SGD's curves stretch right as the
// delay grows; ASGD's curves are nearly delay-invariant; at 100% delay ASGD
// reaches the sync run's error up to ~2x faster.

#include <iostream>

#include "harness.hpp"

using namespace asyncml;

int main() {
  bench::banner(
      "Figure 3: ASGD vs SGD under a controlled-delay straggler (8 workers)",
      "ASGD converges at the same rate for every delay; SGD degrades with delay; "
      "~2x speedup at 100% delay");

  constexpr int kWorkers = 8;
  constexpr int kPartitions = 32;
  constexpr std::uint64_t kIterations = 40;
  const std::vector<double> kDelays = {0.0, 0.3, 0.6, 1.0};

  // "task compute µs" is the real CPU time per task before service-floor
  // padding: wall clock here is floor-pinned by design (the floor models the
  // cluster), so the fused batch kernels' win surfaces in this column, not
  // in wall time.
  metrics::Table summary(
      {"dataset", "delay", "SGD wall ms", "ASGD wall ms", "SGD err", "ASGD err",
       "speedup(ASGD vs SGD)", "task compute us", "ASGD result KB",
       "ASGD bcast KB (base+delta)"});
  std::vector<std::string> rows;

  for (const bench::BenchDataset& ds : bench::all_datasets(/*row_scale=*/2.0)) {
    const optim::Workload workload =
        optim::Workload::create(ds.data, kPartitions, optim::make_least_squares());
    const bench::RunPlan plan =
        bench::make_plan(ds, /*saga=*/false, kIterations, kPartitions, /*seed=*/11,
                        /*service_floor_ms=*/6.0);

    for (double delay : kDelays) {
      auto model = delay > 0.0
                       ? std::make_shared<straggler::ControlledDelay>(0, delay)
                       : std::shared_ptr<straggler::ControlledDelay>();

      engine::Cluster sync_cluster(bench::cluster_config(kWorkers, model));
      const optim::RunResult sync =
          optim::SgdSolver::run(sync_cluster, workload, plan.sync_config);

      engine::Cluster async_cluster(bench::cluster_config(kWorkers, model));
      const optim::RunResult async_run =
          optim::AsgdSolver::run(async_cluster, workload, plan.async_config);

      const std::string tag = ds.name + "-d" + std::to_string(static_cast<int>(delay * 100));
      for (const std::string& r : bench::trace_rows(tag + "-Sync", sync.trace)) {
        rows.push_back(r);
      }
      for (const std::string& r : bench::trace_rows(tag + "-ASYNC", async_run.trace)) {
        rows.push_back(r);
      }

      summary.add_row({ds.name, std::to_string(static_cast<int>(delay * 100)) + "%",
                       metrics::Table::num(sync.wall_ms, 4),
                       metrics::Table::num(async_run.wall_ms, 4),
                       metrics::Table::num(sync.final_error()),
                       metrics::Table::num(async_run.final_error()),
                       bench::speedup_str(sync.trace, async_run.trace),
                       metrics::Table::num(async_run.mean_task_compute_ms * 1e3, 4),
                       metrics::Table::num(
                           static_cast<double>(async_run.result_bytes) / 1024.0, 4),
                       bench::bcast_kb_str(async_run)});
    }
  }

  bench::write_csv("fig3.csv", "series,time_ms,update,error", rows);
  std::cout << "\n";
  summary.print(std::cout);
  std::cout << "\nshape check: SGD wall time grows with delay; ASGD wall time stays "
               "~flat; speedup grows with delay (paper: up to 2x at 100%).\n";

  // ---- Sharded model plane: per-shard broadcast byte accounting. ----------
  // ASGD on rcv1 (the sparse dataset) with the model plane split across S=4
  // coordinator shards (docs/SHARDING.md): workers fetch only the shards
  // their batch-union support touches, so per-shard base/delta bytes — and
  // the fraction of model reads that skipped shards — make the wire win of
  // range partitioning visible next to the aggregate columns above.
  constexpr std::uint32_t kShards = 4;
  const bench::BenchDataset rcv1 = bench::load_dataset("rcv1", /*row_scale=*/2.0);
  const optim::Workload sharded_workload =
      optim::Workload::create(rcv1.data, kPartitions, optim::make_least_squares());
  const bench::RunPlan sharded_plan =
      bench::make_plan(rcv1, /*saga=*/false, kIterations, kPartitions, /*seed=*/11,
                       /*service_floor_ms=*/6.0);
  optim::SolverConfig sharded_config = sharded_plan.async_config;
  sharded_config.store_config.num_shards = kShards;

  engine::Cluster sharded_cluster(bench::cluster_config(kWorkers));
  const optim::RunResult sharded_run =
      optim::AsgdSolver::run(sharded_cluster, sharded_workload, sharded_config);

  metrics::Table shard_table(
      {"shard", "base KB", "delta KB", "fetches", "share of bcast B"});
  std::uint64_t total_shard_bytes = 0;
  for (std::uint32_t s = 0; s < kShards; ++s) {
    const auto& c = sharded_cluster.metrics().shard(s);
    total_shard_bytes += c.base_bytes.load() + c.delta_bytes.load();
  }
  std::vector<std::string> shard_rows;
  for (std::uint32_t s = 0; s < kShards; ++s) {
    const auto& c = sharded_cluster.metrics().shard(s);
    const std::uint64_t bytes = c.base_bytes.load() + c.delta_bytes.load();
    shard_table.add_row(
        {std::to_string(s),
         metrics::Table::num(static_cast<double>(c.base_bytes.load()) / 1024.0, 4),
         metrics::Table::num(static_cast<double>(c.delta_bytes.load()) / 1024.0, 4),
         std::to_string(c.fetches.load()),
         metrics::Table::num(
             100.0 * static_cast<double>(bytes) /
                 static_cast<double>(std::max<std::uint64_t>(1, total_shard_bytes)),
             3) + "%"});
    shard_rows.push_back(std::to_string(s) + ',' +
                         std::to_string(c.base_bytes.load()) + ',' +
                         std::to_string(c.delta_bytes.load()) + ',' +
                         std::to_string(c.fetches.load()));
  }
  bench::write_csv("fig3_shards.csv", "shard,base_bytes,delta_bytes,fetches",
                   shard_rows);
  std::cout << "\nASGD on rcv1 with S=" << kShards << " model-plane shards "
            << "(delay 0%, err " << metrics::Table::num(sharded_run.final_error())
            << "):\n";
  shard_table.print(std::cout);
  const double partial_pct =
      100.0 * static_cast<double>(sharded_run.shard_reads_partial) /
      static_cast<double>(std::max<std::uint64_t>(1, sharded_run.shard_reads));
  const double mean_touches =
      static_cast<double>(sharded_run.shard_touches) /
      static_cast<double>(std::max<std::uint64_t>(1, sharded_run.shard_reads));
  std::cout << "model reads touching < S shards: "
            << metrics::Table::num(partial_pct, 3) << "% (mean "
            << metrics::Table::num(mean_touches, 3) << " of " << kShards
            << " shards per read)\n"
            << "shape check: per-shard base+delta bytes split the aggregate "
               "broadcast column ~evenly under range partitioning. The "
               "uniform synthetic stand-in has no topic locality, so batch "
               "support covers every shard here; the masked-fetch win on "
               "locality-structured sparsity is pinned by "
               "tests/properties/shard_equivalence_test.cpp and measured by "
               "bench_micro_shard_route.\n";

  // ---- Charged vs measured wire bytes (docs/TRANSPORT.md). ----------------
  // The same seeded ASGD run twice: over the in-process backend, whose wire
  // counters record the *charged* (modeled) payload bytes, and over the
  // Unix-socket backend, whose counters record the *measured* frame bytes
  // actually moved between processes — one ClusterMetrics path for both.
  // Measured may exceed charged only by framing overhead (20-byte header +
  // msgpack field tags per frame); anything beyond that allowance is flagged
  // as divergence. The lz4 delta chain legitimately undershoots — that gap
  // is the compression win, reported as a ratio.
  const bench::BenchDataset wire_ds = bench::load_dataset("rcv1", /*row_scale=*/1.0);
  const optim::Workload wire_workload =
      optim::Workload::create(wire_ds.data, kPartitions, optim::make_least_squares());
  const bench::RunPlan wire_plan =
      bench::make_plan(wire_ds, /*saga=*/false, /*sync_iterations=*/8, kPartitions,
                       /*seed=*/11, /*service_floor_ms=*/2.0);

  engine::Cluster charged_cluster(bench::cluster_config(kWorkers));
  const optim::RunResult charged_run =
      optim::AsgdSolver::run(charged_cluster, wire_workload, wire_plan.async_config);

  engine::Cluster::Config socket_cfg = bench::cluster_config(kWorkers);
  socket_cfg.transport.backend = transport::Backend::kUnixSocket;
  engine::Cluster measured_cluster(std::move(socket_cfg));
  const optim::RunResult measured_run =
      optim::AsgdSolver::run(measured_cluster, wire_workload, wire_plan.async_config);

  // Generous per-frame allowance for header + msgpack structure around the
  // payload bins; real overhead is far below this.
  constexpr std::uint64_t kFrameAllowanceBytes = 256;
  const char* kChannelNames[engine::kNumWireChannels] = {"task", "result", "model",
                                                         "control"};
  metrics::Table wire_table({"channel", "charged KB", "measured sent KB",
                             "measured recv KB", "frames", "verdict"});
  bool diverged = false;
  for (std::size_t ch = 0; ch < engine::kNumWireChannels; ++ch) {
    const auto& charged = charged_run.wire[ch];
    const auto& measured = measured_run.wire[ch];
    const std::uint64_t allowance = measured.frames * kFrameAllowanceBytes;
    std::string verdict = "ok";
    if (measured.bytes_sent > charged.bytes_sent + allowance) {
      verdict = "DIVERGED (+" +
                std::to_string(measured.bytes_sent - charged.bytes_sent) + " B)";
      diverged = true;
    } else if (charged.bytes_sent > 0 &&
               measured.bytes_sent + allowance < charged.bytes_sent) {
      // Undershoot = the lz4 delta chain compressing below the modeled size.
      verdict = "compressed " +
                metrics::Table::num(static_cast<double>(charged.bytes_sent) /
                                        static_cast<double>(std::max<std::uint64_t>(
                                            1, measured.bytes_sent)),
                                    3) +
                "x";
    }
    wire_table.add_row(
        {kChannelNames[ch],
         metrics::Table::num(static_cast<double>(charged.bytes_sent) / 1024.0, 4),
         metrics::Table::num(static_cast<double>(measured.bytes_sent) / 1024.0, 4),
         metrics::Table::num(static_cast<double>(measured.bytes_received) / 1024.0, 4),
         std::to_string(measured.frames), verdict});
  }
  std::cout << "\ncharged (in-process) vs measured (unix-socket) wire bytes, "
               "ASGD on rcv1 (err "
            << metrics::Table::num(charged_run.final_error()) << " vs "
            << metrics::Table::num(measured_run.final_error()) << "):\n";
  wire_table.print(std::cout);
  std::cout << (diverged
                    ? "WARNING: measured bytes exceed charged + framing allowance "
                      "— the cost model and the real wire disagree.\n"
                    : "shape check: measured stays within framing overhead of "
                      "charged (delta channel may undershoot via lz4).\n");
  return 0;
}
