// Microbenchmark — the durable tier's hot costs (docs/DURABILITY.md).
//
// Three numbers the durability knobs trade against:
//
//   * blob write / read ns per payload (header + CRC + sha256 + file I/O,
//     fsync off so the content pipeline is what's measured, not the device);
//   * checkpoint file size, v3 pointer vs the self-contained v2 snapshot —
//     the v3 payload lives in the blob store, deduped against published
//     bases, so the pointer is O(1) regardless of model dimension;
//   * cold-restore wall time: manifest replay + restore_from_manifest + the
//     lazy chain walk that faults one full delta chain in from disk — the
//     restart-without-replay path a rejoining coordinator pays once.
//
// No google-benchmark dependency: plain wall-clock over enough iterations to
// dominate timer noise.

#include <cstdio>
#include <filesystem>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "harness.hpp"
#include "optim/checkpoint.hpp"
#include "store/disk/disk_tier.hpp"
#include "store/model_cache.hpp"
#include "store/model_store.hpp"

using namespace asyncml;

namespace {

namespace fs = std::filesystem;

store::DiskTierConfig tier_config(const std::string& dir) {
  store::DiskTierConfig cfg;
  cfg.enabled = true;
  cfg.dir = dir;
  cfg.fsync = false;  // measure the pipeline, not the device's flush latency
  return cfg;
}

std::string scratch_dir(const std::string& name) {
  const std::string dir =
      (fs::temp_directory_path() / ("asyncml_bench_" + name)).string();
  fs::remove_all(dir);
  return dir;
}

engine::Payload payload_of(const linalg::DenseVector& w) {
  return engine::Payload::wrap<linalg::DenseVector>(w, w.size_bytes());
}

linalg::DenseVector make_model(std::size_t dim, std::uint64_t salt) {
  linalg::DenseVector w(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    w[i] = static_cast<double>((i * 2654435761u + salt) % 1000) / 997.0;
  }
  return w;
}

}  // namespace

int main() {
  bench::banner("Micro: durable disk tier — blob I/O, checkpoint size, cold restore",
                "durability is write-through after commit: blob costs are off the "
                "update path, a v3 checkpoint is an O(1) pointer, and a restart "
                "anchors on the manifest instead of replaying updates");

  constexpr std::size_t kDim = 16384;   // 128 KiB payloads
  constexpr int kIoIters = 200;
  constexpr engine::Version kChain = 64;  // one base + 63 deltas to cold-restore

  std::vector<std::pair<std::string, double>> json;
  std::vector<std::string> rows;
  metrics::Table table({"metric", "value"});

  // -- blob write / read ns --------------------------------------------------
  const std::string io_dir = scratch_dir("disk_io");
  {
    auto tier = store::disk::DiskTier::open(tier_config(io_dir),
                                            store::disk::OpenMode::kFresh)
                    .value();
    std::vector<support::Sha256Digest> digests;
    digests.reserve(kIoIters);
    support::Stopwatch write_watch;
    for (int i = 0; i < kIoIters; ++i) {
      digests.push_back(
          tier->put_payload(payload_of(make_model(kDim, i))).value());
    }
    const double write_ns = write_watch.elapsed_ms() * 1e6 / kIoIters;

    // Cold reads: a fresh tier instance, so every fetch is a verified file
    // read (hash + CRC), not an LRU hit.
    tier.reset();
    auto cold = store::disk::DiskTier::open(tier_config(io_dir),
                                            store::disk::OpenMode::kResume)
                    .value();
    support::Stopwatch read_watch;
    for (const auto& d : digests) {
      if (!cold->fetch_payload(d).is_ok()) std::abort();
    }
    const double read_ns = read_watch.elapsed_ms() * 1e6 / kIoIters;

    table.add_row({"blob write ns (128 KiB payload)",
                   std::to_string(static_cast<long long>(write_ns))});
    table.add_row({"blob read ns (verified, cold)",
                   std::to_string(static_cast<long long>(read_ns))});
    json.emplace_back("micro_disk_store.io.write_ns", write_ns);
    json.emplace_back("micro_disk_store.io.read_ns", read_ns);
    std::ostringstream os;
    os << "blob_io," << write_ns << ',' << read_ns;
    rows.push_back(os.str());
  }
  fs::remove_all(io_dir);

  // -- checkpoint size: v3 pointer vs v2 snapshot ----------------------------
  const std::string ck_dir = scratch_dir("disk_ckpt");
  {
    auto tier = store::disk::DiskTier::open(tier_config(ck_dir),
                                            store::disk::OpenMode::kFresh)
                    .value();
    optim::SolverCheckpoint cp;
    cp.update_index = 100;
    cp.model_version = 100;
    cp.round = 200;
    cp.model = make_model(kDim, 1);
    cp.counters["tasks_completed"] = 400;

    const std::string v2_path = ck_dir + "/ckpt_v2";
    if (!optim::save_checkpoint(v2_path, cp).is_ok()) std::abort();

    store::disk::CheckpointRecord rec;
    rec.update_index = cp.update_index;
    rec.model_version = cp.model_version;
    rec.round = cp.round;
    rec.model_digest = tier->put_payload(payload_of(cp.model)).value();
    rec.counters.assign(cp.counters.begin(), cp.counters.end());
    if (!tier->append_checkpoint(rec).is_ok()) std::abort();
    const std::string v3_path = ck_dir + "/ckpt_v3";
    if (!optim::save_checkpoint_v3(v3_path, tier->dir(), cp.update_index).is_ok()) {
      std::abort();
    }

    const double v2_bytes = static_cast<double>(fs::file_size(v2_path));
    const double v3_bytes = static_cast<double>(fs::file_size(v3_path));
    table.add_row({"checkpoint bytes (v2 self-contained)",
                   std::to_string(static_cast<long long>(v2_bytes))});
    table.add_row({"checkpoint bytes (v3 pointer)",
                   std::to_string(static_cast<long long>(v3_bytes))});
    json.emplace_back("micro_disk_store.ckpt.v2_bytes", v2_bytes);
    json.emplace_back("micro_disk_store.ckpt.v3_bytes", v3_bytes);
    json.emplace_back("micro_disk_store.ckpt.v2_over_v3", v2_bytes / v3_bytes);
    std::ostringstream os;
    os << "ckpt_bytes," << v2_bytes << ',' << v3_bytes;
    rows.push_back(os.str());
  }
  fs::remove_all(ck_dir);

  // -- cold restore: manifest replay + lazy chain fault-in -------------------
  const std::string re_dir = scratch_dir("disk_restore");
  {
    {
      auto tier = store::disk::DiskTier::open(tier_config(re_dir),
                                              store::disk::OpenMode::kFresh)
                      .value();
      engine::BroadcastStore broadcasts;
      store::StoreConfig cfg;
      cfg.base_interval = kChain;  // one long delta chain
      store::ModelStore model_store(&broadcasts, cfg);
      model_store.attach_disk(tier.get(), 0);
      support::RngStream rng(7);
      linalg::DenseVector w(kDim);
      for (engine::Version v = 0; v < kChain; ++v) {
        for (int t = 0; t < 16; ++t) {
          w[rng.next_below(kDim)] += rng.uniform(-1.0, 1.0);
        }
        model_store.publish(w, v);
      }
    }

    constexpr int kRestoreIters = 20;
    double total_ms = 0.0;
    for (int it = -2; it < kRestoreIters; ++it) {  // negatives warm the page cache
      support::Stopwatch watch;
      auto tier = store::disk::DiskTier::open(tier_config(re_dir),
                                              store::disk::OpenMode::kResume)
                      .value();
      engine::BroadcastStore broadcasts;
      store::StoreConfig cfg;
      cfg.base_interval = kChain;
      store::ModelStore model_store(&broadcasts, cfg);
      model_store.attach_disk(tier.get(), 0);
      model_store.restore_from_manifest(tier->restored().shards.at(0), 0,
                                        kChain - 1);
      const linalg::DenseVector& w =
          model_store.driver_cache().value_at(kChain - 1);
      if (w.size() != kDim) std::abort();
      if (it >= 0) total_ms += watch.elapsed_ms();
    }
    const double restore_ms = total_ms / kRestoreIters;
    table.add_row({"cold restore ms (64-version chain)",
                   metrics::Table::num(restore_ms, 3)});
    json.emplace_back("micro_disk_store.restore.walk_ms", restore_ms);
    std::ostringstream os;
    os << "cold_restore," << restore_ms << ",0";
    rows.push_back(os.str());
  }
  fs::remove_all(re_dir);

  bench::write_csv("micro_disk_store.csv", "case,a,b", rows);
  bench::update_bench_json(json);
  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nshape check: the v3 pointer stays O(1) while v2 scales with "
               "dim; cold restore is a manifest replay plus one chain "
               "fault-in — milliseconds, independent of how many updates the "
               "killed run had executed.\n";
  return 0;
}
