// Ablation A4 — dynamic placement: work stealing × speculative replication.
//
// Barrier-wait SGD through the ASYNCscheduler (ScheduledSgdSolver) under the
// controlled-delay straggler, with each combination of the two
// dynamic-placement features (docs/SCHEDULING.md):
//
//   fixed       classic p % W placement (the seed scheduler)
//   steal       locality-aware work stealing only
//   spec        speculative task replication only
//   steal+spec  both
//
// Expected shape: with no delay all four run alike (zero steals, trajectory
// bit-identical — the hysteresis margin keeps EWMA jitter from reshuffling a
// healthy cluster). At 100% delay, stealing rebalances the straggler's
// backlog once (a handful of one-time migrations), speculation trims the
// in-round tail, and the combination reaches the target objective fastest —
// all with bit-identical iterates, since replicas recompute the same
// (seed, partition, seq) mini-batches and results combine in partition order.

#include <iostream>
#include <optional>

#include "harness.hpp"

using namespace asyncml;

int main() {
  bench::banner(
      "Ablation A4: work stealing x speculative replication (barrier-wait SGD, CDS)",
      "steal+spec cuts wall-clock-to-target >= 1.3x at 100% delay; no-delay "
      "runs are bit-identical to fixed placement");

  constexpr int kWorkers = 8;
  constexpr int kPartitions = 24;  // 3 per worker: backlog visible per round
  constexpr std::uint64_t kIterations = 20;

  const bench::BenchDataset ds = bench::load_dataset("epsilon", /*row_scale=*/1.0);
  const optim::Workload workload =
      optim::Workload::create(ds.data, kPartitions, optim::make_least_squares());
  const bench::RunPlan plan =
      bench::make_plan(ds, /*saga=*/false, kIterations, kPartitions, /*seed=*/47,
                       /*service_floor_ms=*/6.0);

  struct Entry {
    const char* name;
    core::StealMode steal;
    double speculation;
  };
  const std::vector<Entry> entries = {
      {"fixed", core::StealMode::kOff, 0.0},
      {"steal", core::StealMode::kLocality, 0.0},
      {"spec", core::StealMode::kOff, 2.0},
      {"steal+spec", core::StealMode::kLocality, 2.0},
  };

  metrics::Table table({"delay", "placement", "wall ms", "mean wait ms", "stolen",
                        "specul.", "dups", "migration KB", "vs fixed"});
  std::vector<std::string> rows;

  for (double delay : {0.0, 1.0}) {
    auto model = delay > 0.0
                     ? std::make_shared<straggler::ControlledDelay>(0, delay)
                     : std::shared_ptr<straggler::ControlledDelay>();

    std::optional<optim::RunResult> fixed;
    for (const Entry& entry : entries) {
      optim::SolverConfig config = plan.sync_config;
      config.steal_mode = entry.steal;
      config.speculation_factor = entry.speculation;

      engine::Cluster cluster(bench::cluster_config(kWorkers, model));
      const optim::RunResult run =
          optim::ScheduledSgdSolver::run(cluster, workload, config);

      const std::string vs_fixed =
          fixed.has_value() ? bench::speedup_str(fixed->trace, run.trace) : "1.00x";
      const bool bits_match =
          !fixed.has_value() || linalg::bitwise_equal(fixed->final_w, run.final_w);
      if (!bits_match) {
        std::cout << "  [check] WARNING: " << entry.name << " at delay " << delay
                  << " diverged from the fixed-placement trajectory\n";
      }

      std::ostringstream os;
      os << delay << ',' << entry.name << ',' << run.wall_ms << ',' << run.mean_wait_ms
         << ',' << run.partitions_stolen << ',' << run.tasks_speculated << ','
         << run.duplicates_dropped << ',' << run.migration_bytes / 1024;
      rows.push_back(os.str());
      table.add_row({std::to_string(static_cast<int>(delay * 100)) + "%", entry.name,
                     metrics::Table::num(run.wall_ms, 4),
                     metrics::Table::num(run.mean_wait_ms, 4),
                     std::to_string(run.partitions_stolen),
                     std::to_string(run.tasks_speculated),
                     std::to_string(run.duplicates_dropped),
                     std::to_string(run.migration_bytes / 1024), vs_fixed});

      if (!fixed.has_value()) fixed = run;
    }
  }

  bench::write_csv("ablation_stealing.csv",
                   "delay,placement,wall_ms,mean_wait_ms,stolen,speculated,dups,"
                   "migration_kb",
                   rows);
  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nshape check: at 0% delay every row matches fixed (0 steals, "
               "bit-identical trajectory); at 100% delay steal+spec is the "
               "fastest row with >= 1.3x vs fixed.\n";
  return 0;
}
