// Microbenchmark — delta-chain apply vs full-snapshot fetch in the model store.
//
// Times the steady-state step every asynchronous round pays: a worker that
// already holds version v−1 materializes version v.  Under delta publishing
// it fetches one sparse overwrite delta (8 + 12*nnz wire bytes) and applies
// it onto a copy of its cached ancestor; under full-snapshot publishing it
// fetches the full 8*dim payload.  Reports the wall cost of resolution and —
// the headline — the modeled per-version wire bytes, across a sweep of
// per-version update densities.  No google-benchmark dependency: plain
// wall-clock over enough iterations to dominate timer noise.

#include <algorithm>
#include <iostream>
#include <sstream>

#include "harness.hpp"
#include "store/model_cache.hpp"
#include "store/model_store.hpp"

using namespace asyncml;

namespace {

struct CaseResult {
  double ns_per_resolve = 0.0;
  std::uint64_t step_wire_bytes = 0;  ///< bytes charged for the v−1 → v step
};

/// Publishes `versions` models over `dim` coords, each update touching
/// ~`density * dim` random coordinates.
void publish_churn(store::ModelStore& model_store, std::size_t dim,
                   engine::Version versions, double density) {
  support::RngStream rng(7);
  linalg::DenseVector w(dim);
  for (engine::Version v = 0; v < versions; ++v) {
    const auto touches = std::max<std::size_t>(
        1, static_cast<std::size_t>(density * static_cast<double>(dim)));
    for (std::size_t t = 0; t < touches; ++t) {
      w[rng.next_below(dim)] += rng.uniform(-1.0, 1.0);
    }
    model_store.publish(w, v);
  }
}

CaseResult run_case(const engine::BroadcastStore& broadcasts,
                    store::ModelStore& model_store, engine::Version head,
                    int iters) {
  engine::NetworkModel net;
  net.time_scale = 0.0;  // measure CPU cost; bytes are counted, not slept
  CaseResult out;
  double total_ms = 0.0;
  for (int it = -3; it < iters; ++it) {  // negative iterations warm the caches
    // A warm worker: it materialized v−1 last round, v is new to it.
    engine::ClusterMetrics metrics(1);
    engine::BroadcastCache bcache(&broadcasts, &net, &metrics);
    store::VersionedModelCache cache(&model_store, &bcache, &metrics);
    (void)cache.value_at(head - 1);
    metrics.broadcast_bytes.reset();

    support::Stopwatch watch;
    const linalg::DenseVector& w = cache.value_at(head);
    if (it >= 0) total_ms += watch.elapsed_ms();
    if (it == 0) out.step_wire_bytes = metrics.broadcast_bytes.load();
    if (w[0] > 1e300) std::cout << "";  // keep the resolve observable
  }
  out.ns_per_resolve = total_ms * 1e6 / static_cast<double>(iters);
  return out;
}

}  // namespace

int main() {
  bench::banner("Micro: model-store resolution, delta chain vs full snapshot",
                "a worker holding version v-1 pays O(delta-nnz) wire bytes for "
                "version v, not O(dim)");

  constexpr std::size_t kDim = 16384;
  constexpr engine::Version kVersions = 16;  // one base + 15 deltas
  const std::vector<double> kDensities = {0.0001, 0.001, 0.01, 0.1};

  metrics::Table table({"update density", "resolve ns (snapshot)",
                        "resolve ns (delta)", "step B (snapshot)",
                        "step B (delta)", "bytes ratio"});
  std::vector<std::string> rows;
  std::vector<std::pair<std::string, double>> json;

  for (double density : kDensities) {
    engine::BroadcastStore snap_broadcasts;
    store::StoreConfig snap_config;
    snap_config.delta_enabled = false;
    store::ModelStore snap_store(&snap_broadcasts, snap_config);
    publish_churn(snap_store, kDim, kVersions, density);

    engine::BroadcastStore delta_broadcasts;
    store::StoreConfig delta_config;
    delta_config.base_interval = kVersions;  // a single chain for the sweep
    store::ModelStore delta_store(&delta_broadcasts, delta_config);
    publish_churn(delta_store, kDim, kVersions, density);

    const double nnz_per_chain =
        std::max(1.0, density * static_cast<double>(kDim) *
                          static_cast<double>(kVersions - 1));
    const int iters = static_cast<int>(std::clamp(
        4.0e7 / (nnz_per_chain + static_cast<double>(kDim)), 50.0, 20000.0));

    const CaseResult snap =
        run_case(snap_broadcasts, snap_store, kVersions - 1, iters);
    const CaseResult delta =
        run_case(delta_broadcasts, delta_store, kVersions - 1, iters);

    const auto whole = [](double v) {
      return std::to_string(static_cast<long long>(v + 0.5));
    };
    table.add_row(
        {metrics::Table::num(density, 4), whole(snap.ns_per_resolve),
         whole(delta.ns_per_resolve), std::to_string(snap.step_wire_bytes),
         std::to_string(delta.step_wire_bytes),
         metrics::Table::num(static_cast<double>(snap.step_wire_bytes) /
                                 static_cast<double>(std::max<std::uint64_t>(
                                     1, delta.step_wire_bytes)),
                             3)});
    std::ostringstream os;
    os << density << ',' << snap.ns_per_resolve << ',' << delta.ns_per_resolve
       << ',' << snap.step_wire_bytes << ',' << delta.step_wire_bytes;
    rows.push_back(os.str());

    std::ostringstream key;
    key << "micro_model_store.d" << static_cast<int>(density * 10000);
    json.emplace_back(key.str() + ".snapshot_ns", snap.ns_per_resolve);
    json.emplace_back(key.str() + ".delta_ns", delta.ns_per_resolve);
    json.emplace_back(key.str() + ".bytes_ratio",
                      static_cast<double>(snap.step_wire_bytes) /
                          static_cast<double>(
                              std::max<std::uint64_t>(1, delta.step_wire_bytes)));
  }

  bench::write_csv("micro_model_store.csv",
                   "density,snapshot_ns,delta_ns,snapshot_bytes,delta_bytes", rows);
  bench::update_bench_json(json);
  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nshape check: per-version delta bytes collapse at low update "
               "density and approach one snapshot as deltas densify; delta "
               "resolution pays an O(dim) ancestor copy plus O(nnz) applies "
               "(microseconds) for orders-of-magnitude fewer wire bytes.\n";
  return 0;
}
