// Microbenchmark — dense vs adaptive gradient accumulation.
//
// Times the per-mini-batch accumulator cycle every solver runs in its task
// bodies (zero → axpy each batch row → apply into w) for a density sweep,
// comparing the forced-dense representation (the pre-GradVector pipeline:
// O(dim) zeroing and apply per batch) against the adaptive GradVector
// (O(batch-nnz) until the densify threshold).  Also reports the modeled
// wire size of one batch gradient, i.e. what the engine charges per task
// result.  No google-benchmark dependency: plain wall-clock over enough
// iterations to dominate timer noise.

#include <algorithm>
#include <iostream>
#include <sstream>

#include "harness.hpp"

using namespace asyncml;

namespace {

struct CaseResult {
  double ns_per_batch = 0.0;
  std::size_t payload_bytes = 0;
};

CaseResult run_case(const data::Dataset& dataset, linalg::GradMode mode,
                    std::size_t batch_rows, int iters) {
  const std::size_t dim = dataset.cols();
  // Mirror detail::grad_config: kAuto decides on the batch-union density.
  const linalg::GradVectorConfig cfg = linalg::resolve_grad_config(
      mode, dim,
      linalg::expected_union_density(dataset.density(),
                                     static_cast<double>(batch_rows)));
  linalg::GradVector g(cfg);
  linalg::DenseVector w(dim);

  CaseResult out;
  std::size_t row = 0;
  support::Stopwatch watch;
  for (int it = 0; it < iters; ++it) {
    g.set_zero();
    for (std::size_t b = 0; b < batch_rows; ++b) {
      const data::LabeledPoint p = dataset.point(row);
      p.features.axpy_into(0.5, g);
      row = (row + 1) % dataset.rows();
    }
    if (it == 0) out.payload_bytes = g.size_bytes();
    g.scale_into(-1e-9, w.span());
  }
  out.ns_per_batch = watch.elapsed_ms() * 1e6 / static_cast<double>(iters);
  // Keep w observable so the apply loop cannot be optimized away.
  if (w[0] > 1e300) std::cout << "";
  return out;
}

}  // namespace

int main() {
  bench::banner("Micro: gradient accumulation, dense vs adaptive",
                "sparse mini-batch gradients cost and ship O(batch-nnz), not O(dim)");

  constexpr std::size_t kDim = 16384;
  constexpr std::size_t kRows = 128;
  constexpr std::size_t kBatchRows = 16;
  const std::vector<double> kDensities = {0.001, 0.01, 0.1, 1.0};

  metrics::Table table({"density", "repr", "batch ns (dense)", "batch ns (adaptive)",
                        "speedup", "payload B (dense)", "payload B (adaptive)",
                        "bytes ratio"});
  std::vector<std::string> rows;
  std::vector<std::pair<std::string, double>> json;

  for (double density : kDensities) {
    const auto problem = data::synthetic::make_sparse(
        data::synthetic::SparseSpec{.name = "micro",
                                    .rows = kRows,
                                    .cols = kDim,
                                    .density = density},
        /*seed=*/42);
    const auto& dataset = problem.dataset;

    // Budget iterations by work per batch so every case runs long enough.
    const double nnz_per_batch = std::max(
        1.0, density * static_cast<double>(kDim) * static_cast<double>(kBatchRows));
    const int iters = static_cast<int>(std::clamp(
        8.0e6 / (nnz_per_batch + static_cast<double>(kDim) / 16.0), 20.0, 20000.0));

    const CaseResult dense =
        run_case(dataset, linalg::GradMode::kDense, kBatchRows, iters);
    const CaseResult adaptive =
        run_case(dataset, linalg::GradMode::kAuto, kBatchRows, iters);

    const linalg::GradVectorConfig cfg = linalg::resolve_grad_config(
        linalg::GradMode::kAuto, kDim,
        linalg::expected_union_density(dataset.density(),
                                       static_cast<double>(kBatchRows)));
    const auto whole = [](double v) {
      return std::to_string(static_cast<long long>(v + 0.5));
    };
    table.add_row({metrics::Table::num(density, 3),
                   cfg.start_dense ? "dense-start" : "sparse-start",
                   whole(dense.ns_per_batch), whole(adaptive.ns_per_batch),
                   metrics::Table::num(dense.ns_per_batch /
                                           std::max(1.0, adaptive.ns_per_batch),
                                       2),
                   std::to_string(dense.payload_bytes),
                   std::to_string(adaptive.payload_bytes),
                   metrics::Table::num(static_cast<double>(dense.payload_bytes) /
                                           static_cast<double>(
                                               std::max<std::size_t>(
                                                   1, adaptive.payload_bytes)),
                                       3)});
    std::ostringstream os;
    os << density << ',' << dense.ns_per_batch << ',' << adaptive.ns_per_batch << ','
       << dense.payload_bytes << ',' << adaptive.payload_bytes;
    rows.push_back(os.str());

    std::ostringstream key;
    key << "micro_grad_accumulate.d" << static_cast<int>(density * 1000);
    json.emplace_back(key.str() + ".dense_ns", dense.ns_per_batch);
    json.emplace_back(key.str() + ".adaptive_ns", adaptive.ns_per_batch);
    // The satellite acceptance knob: adaptive compute must stay <= 1.2x
    // dense at every sweep density (tools/bench_diff.py flags drifts).
    json.emplace_back(key.str() + ".adaptive_over_dense",
                      adaptive.ns_per_batch / std::max(1.0, dense.ns_per_batch));
    json.emplace_back(key.str() + ".bytes_ratio",
                      static_cast<double>(dense.payload_bytes) /
                          static_cast<double>(
                              std::max<std::size_t>(1, adaptive.payload_bytes)));
  }

  bench::write_csv("micro_grad_accumulate.csv",
                   "density,dense_ns,adaptive_ns,dense_bytes,adaptive_bytes", rows);
  bench::update_bench_json(json);
  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nshape check: adaptive batch time and payload bytes collapse at low "
               "density and match dense within noise at density 1.0.\n";
  return 0;
}
