// Figure 6 — "Average wait time per iteration with 8 workers for ASAGA and
// SAGA in ASYNC for different delay intensities."
//
// Expected shape (paper): SAGA's wait rises with delay (most visibly at
// 100%); ASAGA's wait is flat across all intensities.
//
// The "SAGA+steal" column reruns the synchronous SAGA with work stealing
// enabled (docs/SCHEDULING.md): its wait should sit between plain SAGA and
// ASAGA under delay, because the straggler sheds partitions instead of
// stalling the round. Speculation is forced off inside SagaSolver —
// history-writing tasks are not idempotent under racing replicas.

#include <iostream>

#include "harness.hpp"

using namespace asyncml;

int main() {
  bench::banner(
      "Figure 6: average wait time per iteration, ASAGA vs SAGA (8 workers, CDS)",
      "SAGA wait grows with delay; ASAGA wait is the same for all intensities");

  constexpr int kWorkers = 8;
  constexpr int kPartitions = 32;
  constexpr std::uint64_t kIterations = 30;
  const std::vector<double> kDelays = {0.0, 0.3, 0.6, 1.0};

  metrics::Table summary({"dataset", "delay", "SAGA wait ms", "SAGA+steal wait ms",
                          "ASAGA wait ms", "SAGA p95 ms", "ASAGA p95 ms",
                          "stolen/migr KB"});
  std::vector<std::string> rows;

  for (const bench::BenchDataset& ds : bench::all_datasets(/*row_scale=*/2.0)) {
    const optim::Workload workload =
        optim::Workload::create(ds.data, kPartitions, optim::make_least_squares());
    const bench::RunPlan plan =
        bench::make_plan(ds, /*saga=*/true, kIterations, kPartitions, /*seed=*/19,
                        /*service_floor_ms=*/6.0);

    for (double delay : kDelays) {
      auto model = delay > 0.0
                       ? std::make_shared<straggler::ControlledDelay>(0, delay)
                       : std::shared_ptr<straggler::ControlledDelay>();

      engine::Cluster sync_cluster(bench::cluster_config(kWorkers, model));
      const optim::RunResult sync =
          optim::SagaSolver::run(sync_cluster, workload, plan.sync_config);

      // Same synchronous SAGA, with work stealing: the straggler sheds idle
      // partitions to healthy workers between rounds.
      optim::SolverConfig ss_config = plan.sync_config;
      ss_config.steal_mode = core::StealMode::kLocality;
      engine::Cluster ss_cluster(bench::cluster_config(kWorkers, model));
      const optim::RunResult ss =
          optim::SagaSolver::run(ss_cluster, workload, ss_config);

      engine::Cluster async_cluster(bench::cluster_config(kWorkers, model));
      const optim::RunResult async_run =
          optim::AsagaSolver::run(async_cluster, workload, plan.async_config);

      std::ostringstream os;
      os << ds.name << ',' << delay << ',' << sync.mean_wait_ms << ','
         << ss.mean_wait_ms << ',' << async_run.mean_wait_ms;
      rows.push_back(os.str());
      summary.add_row({ds.name, std::to_string(static_cast<int>(delay * 100)) + "%",
                       metrics::Table::num(sync.mean_wait_ms, 4),
                       metrics::Table::num(ss.mean_wait_ms, 4),
                       metrics::Table::num(async_run.mean_wait_ms, 4),
                       metrics::Table::num(sync.p95_wait_ms, 4),
                       metrics::Table::num(async_run.p95_wait_ms, 4),
                       std::to_string(ss.partitions_stolen) + "/" +
                           std::to_string(ss.migration_bytes / 1024)});
    }
  }

  bench::write_csv("fig6.csv",
                   "dataset,delay,saga_wait_ms,saga_steal_wait_ms,asaga_wait_ms", rows);
  std::cout << "\n";
  summary.print(std::cout);
  std::cout << "\nshape check: the SAGA column rises with delay (largest jump at "
               "100%); the ASAGA column is ~flat (paper Fig 6); SAGA+steal sits "
               "between them once delay kicks in.\n";
  return 0;
}
