// Microbenchmark — the span-telemetry subsystem's overhead budget.
//
// Runs the fig3-shaped ASGD workload (8 workers, 32 partitions, rcv1
// stand-in, 6 ms service floor) with telemetry off and on, interleaved, and
// compares min-of-k wall clocks. The service floor pins the wall time, so
// the measurement isolates what full-rate recording adds to the task path:
// the budget is < 1% (docs/TELEMETRY.md, "Overhead budget"), and the process
// exits 1 when the measured overhead exceeds it — the CI bench-perf job
// fails hard on a telemetry-cost regression.
//
// The telemetry-on run also writes the stage report next to BENCH_micro.json
// (bench_results/TELEMETRY_fig3.json); tools/bench_diff.py --telemetry diffs
// it against the checked-in TELEMETRY_fig3.baseline.json.

#include <algorithm>
#include <iostream>
#include <vector>

#include "harness.hpp"
#include "telemetry/report.hpp"

using namespace asyncml;

namespace {

constexpr int kWorkers = 8;
constexpr int kPartitions = 32;
constexpr std::uint64_t kIterations = 40;
constexpr double kServiceFloorMs = 6.0;
constexpr int kReps = 3;
constexpr double kBudget = 0.01;  // < 1% wall-clock overhead, enforced below

}  // namespace

int main() {
  bench::banner("Micro: span-telemetry overhead budget",
                "full-rate per-task span recording costs < 1% wall clock on "
                "the service-floor-pinned fig3 ASGD shape");

  const bench::BenchDataset rcv1 = bench::load_dataset("rcv1", /*row_scale=*/2.0);
  const optim::Workload workload =
      optim::Workload::create(rcv1.data, kPartitions, optim::make_least_squares());
  const bench::RunPlan plan =
      bench::make_plan(rcv1, /*saga=*/false, kIterations, kPartitions, /*seed=*/11,
                       kServiceFloorMs);

  optim::SolverConfig off_config = plan.async_config;
  optim::SolverConfig on_config = plan.async_config;
  on_config.telemetry.enabled = true;
  on_config.telemetry.export_path = bench::results_path("TELEMETRY_fig3.json");

  // Interleaved off/on pairs: host noise (thermal drift, background load)
  // hits both sides of each pair; min-of-k strips the rest.
  double min_off = 0.0;
  double min_on = 0.0;
  std::uint64_t records = 0;
  std::uint64_t dropped = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    engine::Cluster off_cluster(bench::cluster_config(kWorkers));
    const optim::RunResult off =
        optim::AsgdSolver::run(off_cluster, workload, off_config);
    min_off = rep == 0 ? off.wall_ms : std::min(min_off, off.wall_ms);

    engine::Cluster on_cluster(bench::cluster_config(kWorkers));
    const optim::RunResult on =
        optim::AsgdSolver::run(on_cluster, workload, on_config);
    min_on = rep == 0 ? on.wall_ms : std::min(min_on, on.wall_ms);
    if (on.telemetry != nullptr) {
      records = on.telemetry->records;
      dropped = on.telemetry->dropped;
    }
  }

  const double overhead = min_on / min_off - 1.0;

  metrics::Table table({"telemetry", "min wall ms (of " + std::to_string(kReps) + ")",
                        "records", "dropped"});
  table.add_row({"off", metrics::Table::num(min_off, 4), "-", "-"});
  table.add_row({"on", metrics::Table::num(min_on, 4), std::to_string(records),
                 std::to_string(dropped)});
  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nmeasured overhead: " << metrics::Table::num(overhead * 100.0, 3)
            << "% (budget " << metrics::Table::num(kBudget * 100.0, 1) << "%)\n";

  bench::update_bench_json({
      {"micro_telemetry.fig3.wall_off_ms", min_off},
      {"micro_telemetry.fig3.wall_on_ms", min_on},
      {"micro_telemetry.fig3.overhead_pct", overhead * 100.0},
      {"micro_telemetry.fig3.records", static_cast<double>(records)},
      {"micro_telemetry.fig3.dropped", static_cast<double>(dropped)},
  });

  if (records == 0) {
    std::cerr << "FAIL: telemetry-on run harvested no span records\n";
    return 1;
  }
  if (overhead > kBudget) {
    std::cerr << "FAIL: telemetry overhead " << overhead * 100.0
              << "% exceeds the " << kBudget * 100.0 << "% budget\n";
    return 1;
  }
  std::cout << "shape check: the two wall clocks are floor-pinned and within "
               "noise of each other; recording rides the sleeps, not the "
               "critical path.\n";
  return 0;
}
