// Ablation A2 — barrier-control strategies (paper §5.3, Listing 2).
//
// The same ASGD problem under ASP, BSP, SSP(s) and the §5.2 β-fraction
// barrier, with one controlled straggler.  Expected shape: ASP has the
// highest throughput (updates/second) and the highest staleness; BSP has
// zero staleness but pays the straggler at every round; SSP interpolates
// with its bound; β-fraction sits between ASP and BSP.

#include <iostream>

#include "harness.hpp"

using namespace asyncml;

int main() {
  bench::banner("Ablation A2: barrier controls for ASGD (ASP/BSP/SSP/beta)",
                "ASP fastest + stalest, BSP slowest + zero staleness, SSP and "
                "beta-fraction in between");

  constexpr int kWorkers = 8;
  constexpr int kPartitions = 16;
  const bench::BenchDataset ds = bench::load_dataset("epsilon", /*row_scale=*/0.5);
  const optim::Workload workload =
      optim::Workload::create(ds.data, kPartitions, optim::make_least_squares());
  auto straggler_model = std::make_shared<straggler::ControlledDelay>(0, 1.0);

  struct Entry {
    std::string name;
    core::BarrierControl barrier;
  };
  std::vector<Entry> entries;
  entries.push_back({"ASP", core::barriers::asp()});
  entries.push_back({"SSP(4)", core::barriers::ssp(4)});
  entries.push_back({"SSP(16)", core::barriers::ssp(16)});
  entries.push_back({"beta(0.5)", core::barriers::available_fraction(0.5)});
  entries.push_back({"BSP", core::barriers::bsp()});

  const bench::RunPlan plan =
      bench::make_plan(ds, /*saga=*/false, /*sync_iterations=*/25, kPartitions, 41);

  metrics::Table table({"barrier", "wall ms", "updates/s", "final err", "mean wait ms"});
  std::vector<std::string> rows;

  for (const Entry& entry : entries) {
    optim::SolverConfig config = plan.async_config;
    config.barrier = entry.barrier;

    engine::Cluster cluster(bench::cluster_config(kWorkers, straggler_model));
    const optim::RunResult result = optim::AsgdSolver::run(cluster, workload, config);

    const double ups = result.wall_ms > 0
                           ? 1e3 * static_cast<double>(result.updates) / result.wall_ms
                           : 0.0;
    std::ostringstream os;
    os << entry.name << ',' << result.wall_ms << ',' << ups << ','
       << result.final_error() << ',' << result.mean_wait_ms;
    rows.push_back(os.str());
    table.add_row({entry.name, metrics::Table::num(result.wall_ms, 4),
                   metrics::Table::num(ups, 4), metrics::Table::num(result.final_error()),
                   metrics::Table::num(result.mean_wait_ms, 4)});
  }

  bench::write_csv("ablation_barrier.csv",
                   "barrier,wall_ms,updates_per_s,final_err,mean_wait_ms", rows);
  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nshape check: updates/s should decrease from ASP toward BSP; all "
               "strategies converge (final err small).\n";
  return 0;
}
