#pragma once

// Shared experiment harness for the per-figure benchmark binaries.
//
// Each bench regenerates one table/figure of the paper's evaluation:
// it builds the scaled-down dataset stand-ins, configures the cluster and
// straggler model, runs the solvers, and prints (a) the CSV series behind
// the figure and (b) a paper-vs-measured summary.  CSV files are also
// written under ./bench_results/ for plotting.

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "asyncml.hpp"

namespace asyncml::bench {

/// One of the paper's evaluation datasets (scaled stand-in) with tuned
/// hyperparameters (the paper tunes per dataset too, §6.1).
struct BenchDataset {
  std::string name;          ///< rcv1 / mnist8m / epsilon
  data::DatasetPtr data;
  double sgd_fraction;       ///< mini-batch rate b for SGD/ASGD
  double saga_fraction;      ///< mini-batch rate b for SAGA/ASAGA
  double sgd_step;           ///< tuned initial step (decaying schedule)
  double saga_step;          ///< tuned constant step
};

/// Loads one of {"rcv1", "mnist8m", "epsilon"}; `row_scale` scales the row
/// count (1.0 = the repository's default bench size, ~1/1000 of the paper).
[[nodiscard]] BenchDataset load_dataset(const std::string& name, double row_scale = 1.0);

/// All three, in the paper's order.
[[nodiscard]] std::vector<BenchDataset> all_datasets(double row_scale = 1.0);

/// Cluster factory mirroring the paper's setups (2-core executors).
[[nodiscard]] engine::Cluster::Config cluster_config(
    int workers, std::shared_ptr<const engine::DelayModel> delay = nullptr);

/// Builds the solver config for a (dataset, algorithm-family) pair.
/// `sync_iterations` is the BSP iteration budget; asynchronous runs get
/// sync_iterations × partitions updates so both consume the same task count.
struct RunPlan {
  optim::SolverConfig sync_config;
  optim::SolverConfig async_config;
  int partitions;
};
/// `service_floor_ms` > 0 pins the per-task base service time explicitly
/// (CDS figures use a floor comfortably above host scheduling noise so the
/// delay multiplier, not jitter, dominates); 0 derives it from the cost
/// model.
[[nodiscard]] RunPlan make_plan(const BenchDataset& dataset, bool saga,
                                std::uint64_t sync_iterations, int partitions,
                                std::uint64_t seed, double service_floor_ms = 0.0);

/// Opens ./bench_results/<file> (directory created on demand) and returns the
/// stream; the caller writes CSV into it.
[[nodiscard]] std::string results_path(const std::string& file);
void write_csv(const std::string& file, const std::string& header,
               const std::vector<std::string>& rows);

/// Read-modify-writes ./bench_results/BENCH_micro.json — the machine-readable
/// metric sink of the micro benches, compared against the checked-in baseline
/// by tools/bench_diff.py (CI's non-blocking perf job).  The file is one flat
/// JSON object of numbers; `values` keys ("<bench>.<case>.<metric>")
/// overwrite, everything else is preserved, keys are written sorted.
void update_bench_json(const std::vector<std::pair<std::string, double>>& values);

/// Emits a trace as CSV rows "series,time_ms,update,error".
[[nodiscard]] std::vector<std::string> trace_rows(const std::string& series,
                                                  const metrics::Trace& trace);

/// Prints a figure banner.
void banner(const std::string& title, const std::string& paper_claim);

/// speedup (baseline time / contender time) at the tightest common error,
/// "n/a" when undefined.
[[nodiscard]] std::string speedup_str(const metrics::Trace& baseline,
                                      const metrics::Trace& contender);

/// "total (base+delta)" rendering of a run's charged broadcast KB — the
/// model-store byte split the fig3/fig5 summaries print.
[[nodiscard]] std::string bcast_kb_str(const optim::RunResult& run);

}  // namespace asyncml::bench
