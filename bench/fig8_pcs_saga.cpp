// Figure 8 — "The performance of ASAGA and SAGA in ASYNC on 32 workers"
// under Production Cluster Straggler patterns (b = 1%).
//
// Expected shape (paper): ASAGA 3.5x faster on mnist8m-like, 4x on
// epsilon-like.

#include <iostream>

#include "harness.hpp"

using namespace asyncml;

int main() {
  bench::banner(
      "Figure 8: ASAGA vs SAGA on 32 workers with production-cluster stragglers",
      "ASAGA reaches the target error ~3.5x faster (mnist8m) / ~4x (epsilon)");

  constexpr int kWorkers = 32;
  constexpr int kPartitions = 32;
  constexpr std::uint64_t kIterations = 30;

  metrics::Table summary({"dataset", "SAGA wall ms", "ASAGA wall ms",
                          "ASAGA+steal wall ms", "SAGA err", "ASAGA err",
                          "speedup(ASAGA vs SAGA)", "stolen/migr KB"});
  std::vector<std::string> rows;

  for (const std::string& name : {std::string("mnist8m"), std::string("epsilon")}) {
    bench::BenchDataset ds = bench::load_dataset(name, /*row_scale=*/2.0);
    ds.saga_fraction = 0.01;  // paper PCS setup: b = 1%
    const optim::Workload workload =
        optim::Workload::create(ds.data, kPartitions, optim::make_least_squares());
    const bench::RunPlan plan =
        bench::make_plan(ds, /*saga=*/true, kIterations, kPartitions, /*seed=*/29);

    auto pcs = std::make_shared<straggler::ProductionCluster>(kWorkers, 2026);

    engine::Cluster sync_cluster(bench::cluster_config(kWorkers, pcs));
    const optim::RunResult sync =
        optim::SagaSolver::run(sync_cluster, workload, plan.sync_config);

    engine::Cluster async_cluster(bench::cluster_config(kWorkers, pcs));
    const optim::RunResult async_run =
        optim::AsagaSolver::run(async_cluster, workload, plan.async_config);

    // ASAGA with the median-anchored barrier + work stealing: long-tail
    // stragglers are shunned and shed their partitions, so every sample
    // keeps contributing to the history. (AsagaSolver itself forces
    // speculation off — replicas of history-writing tasks can race the
    // SampleVersionTable; docs/SCHEDULING.md, "Composition caveats".)
    optim::SolverConfig steal_config = plan.async_config;
    steal_config.barrier = core::barriers::median_completion_within(2.5);
    steal_config.steal_mode = core::StealMode::kLocality;
    engine::Cluster steal_cluster(bench::cluster_config(kWorkers, pcs));
    const optim::RunResult stealing =
        optim::AsagaSolver::run(steal_cluster, workload, steal_config);

    for (const std::string& r : bench::trace_rows(name + "-Sync", sync.trace)) {
      rows.push_back(r);
    }
    for (const std::string& r : bench::trace_rows(name + "-ASYNC", async_run.trace)) {
      rows.push_back(r);
    }
    for (const std::string& r : bench::trace_rows(name + "-ASYNC-steal", stealing.trace)) {
      rows.push_back(r);
    }
    summary.add_row({name, metrics::Table::num(sync.wall_ms, 4),
                     metrics::Table::num(async_run.wall_ms, 4),
                     metrics::Table::num(stealing.wall_ms, 4),
                     metrics::Table::num(sync.final_error()),
                     metrics::Table::num(async_run.final_error()),
                     bench::speedup_str(sync.trace, async_run.trace),
                     std::to_string(stealing.partitions_stolen) + "/" +
                         std::to_string(stealing.migration_bytes / 1024)});
  }

  bench::write_csv("fig8.csv", "series,time_ms,update,error", rows);
  std::cout << "\n";
  summary.print(std::cout);
  std::cout << "\nshape check: ASAGA speedup should be >=2.5x on both datasets "
               "(paper: 3.5x mnist8m, 4x epsilon).\n";
  return 0;
}
