// Microbenchmark — fused batch gradient kernels vs the per-row pipeline.
//
// Times one gradient task's body (the solvers' hot path) both ways:
//   per-row: the RDD sink chain — Bernoulli sample per element, virtual
//            Loss::derivative per row, RowRef dispatch, GradCount moved
//            through the seq op per row;
//   fused:   optim/grad_batch.hpp — one sampling pass, batch margins
//            (gemv / row-slice spmv), loss-kind-dispatched batch derivative,
//            transposed accumulate, per-thread scratch arena.
// Cases follow the paper's (dataset, solver, mini-batch rate) grid —
// epsilon/mnist8m-like dense and rcv1-like sparse at their §6.1 fractions,
// with row-scaled partitions so the per-row pipeline's per-element costs are
// not understated by toy partitions.  Every timed pair is first
// cross-checked for bit-identical results, and a 1-worker fig3-style SGD run
// asserts the full trajectory bit-matches.  Metrics land in
// bench_results/BENCH_micro.json for tools/bench_diff.py.

#include <algorithm>
#include <cstring>
#include <iostream>
#include <sstream>

#include "harness.hpp"
#include "optim/grad_batch.hpp"
#include "optim/solver_util.hpp"

using namespace asyncml;

namespace {

engine::TaskContext task_context(engine::PartitionId partition, std::uint64_t seq,
                                 std::uint64_t seed) {
  engine::TaskContext ctx;
  ctx.worker = 0;
  ctx.partition = partition;
  ctx.seq = seq;
  // Exactly the worker's derivation (engine/worker.cpp).
  ctx.rng = support::RngStream(seed)
                .substream(static_cast<std::uint64_t>(partition) + 1)
                .substream(seq);
  return ctx;
}

bool grad_counts_bit_equal(const optim::GradCount& a, const optim::GradCount& b) {
  return a.count == b.count && a.grad.size_bytes() == b.grad.size_bytes() &&
         a.grad.is_dense() == b.grad.is_dense() &&
         linalg::bitwise_equal(a.grad.to_dense(), b.grad.to_dense());
}

struct CaseResult {
  double perrow_ns = 0.0;
  double fused_ns = 0.0;
  bool bit_identical = true;
  [[nodiscard]] double speedup() const { return perrow_ns / std::max(1.0, fused_ns); }
};

/// Times both task bodies over `iters` rounds cycling through partitions.
CaseResult run_case(const optim::Workload& workload, double fraction, int iters) {
  const linalg::GradVectorConfig grad_cfg =
      optim::SolverConfig{}.grad_config(workload.dim(), workload.dataset->density(),
                                        fraction * static_cast<double>(workload.n()) /
                                            workload.num_partitions());
  linalg::DenseVector w(workload.dim());
  // A non-trivial model so derivative values vary.
  support::RngStream wrng(99);
  for (std::size_t i = 0; i < w.size(); ++i) w[i] = wrng.uniform(-0.5, 0.5);
  // Real history-broadcast handle, as the solvers capture it: the per-row
  // path resolves value() through the model store PER ROW (the pre-fused
  // production hot path); the fused body resolves once per task.
  engine::BroadcastStore store;
  auto registry = std::make_shared<core::HistoryRegistry>(&store);
  registry->publish(w, /*version=*/0);
  const core::HistoryBroadcast handle(registry, /*pinned=*/0);

  const auto perrow_fn = engine::make_aggregate_fn<data::LabeledPoint, optim::GradCount>(
      workload.points.sample(fraction),
      optim::GradCount{linalg::GradVector(grad_cfg)},
      optim::detail::make_grad_seq(workload.loss, handle, grad_cfg));
  const auto fused_fn = optim::detail::make_grad_batch_fn(
      workload.dataset, workload.partitions, workload.loss, handle, grad_cfg,
      fraction);

  CaseResult out;
  const int parts = workload.num_partitions();

  // Cross-check first (not timed): every (partition, seq) pair bit-matches.
  for (int k = 0; k < parts; ++k) {
    auto ctx_a = task_context(k % parts, static_cast<std::uint64_t>(k), 42);
    auto ctx_b = task_context(k % parts, static_cast<std::uint64_t>(k), 42);
    const auto a = (*perrow_fn)(ctx_a);
    const auto b = (*fused_fn)(ctx_b);
    if (!a.is_ok() || !b.is_ok() ||
        !grad_counts_bit_equal(a.value().get<optim::GradCount>(),
                               b.value().get<optim::GradCount>())) {
      out.bit_identical = false;
    }
  }

  const auto time_fn = [&](const std::shared_ptr<const engine::TaskFn>& fn) {
    support::Stopwatch watch;
    for (int k = 0; k < iters; ++k) {
      auto ctx = task_context(k % parts, static_cast<std::uint64_t>(k), 42);
      if (!(*fn)(ctx).is_ok()) std::abort();
    }
    return watch.elapsed_ms() * 1e6 / iters;
  };
  // Alternate min-of-N repetitions so host-load drift (shared cores) hits
  // both variants symmetrically.
  out.perrow_ns = 1e18;
  out.fused_ns = 1e18;
  for (int rep = 0; rep < 5; ++rep) {
    out.perrow_ns = std::min(out.perrow_ns, time_fn(perrow_fn));
    out.fused_ns = std::min(out.fused_ns, time_fn(fused_fn));
  }
  return out;
}

/// SAGA two-pass variant (fresh + historical margins, version table).
CaseResult run_saga_case(const optim::Workload& workload, double fraction, int iters) {
  const linalg::GradVectorConfig grad_cfg =
      optim::SolverConfig{}.grad_config(workload.dim(), workload.dataset->density(),
                                        fraction * static_cast<double>(workload.n()) /
                                            workload.num_partitions());
  linalg::DenseVector w_new(workload.dim());
  linalg::DenseVector w_old(workload.dim());
  support::RngStream wrng(7);
  for (std::size_t i = 0; i < w_new.size(); ++i) {
    w_new[i] = wrng.uniform(-0.5, 0.5);
    w_old[i] = wrng.uniform(-0.5, 0.5);
  }
  // Real two-version history chain: per-row SAGA resolves the pinned model
  // AND each sample's historical model through the store per row.
  engine::BroadcastStore store;
  auto registry = std::make_shared<core::HistoryRegistry>(&store);
  registry->publish(w_old, /*version=*/0);
  registry->publish(w_new, /*version=*/1);
  const core::HistoryBroadcast handle(registry, /*pinned=*/1);
  const auto hist_model = [handle](engine::Version v, const core::ShardSet* mask)
      -> const linalg::DenseVector& { return handle.value_at(v, mask); };

  const auto make_perrow = [&](std::shared_ptr<core::SampleVersionTable> table) {
    // The production per-row SAGA seq op (value_at per visited row). Samples
    // were last seen at version 0, so history resolves to w_old.
    return engine::make_aggregate_fn<data::LabeledPoint, optim::GradHist>(
        workload.points.sample(fraction),
        optim::GradHist{linalg::GradVector(grad_cfg), linalg::GradVector(grad_cfg)},
        optim::detail::make_saga_seq(workload.loss, handle, std::move(table),
                                     grad_cfg));
  };

  const int parts = workload.num_partitions();
  CaseResult out;

  {  // cross-check on fresh tables
    auto table_a =
        std::make_shared<core::SampleVersionTable>(workload.n(), /*init=*/0);
    auto table_b =
        std::make_shared<core::SampleVersionTable>(workload.n(), /*init=*/0);
    auto perrow_fn = make_perrow(table_a);
    auto fused_fn = optim::detail::make_saga_batch_fn(
        workload.dataset, workload.partitions, workload.loss, handle, table_b,
        grad_cfg, fraction, hist_model, /*set_version=*/1);
    for (int k = 0; k < 2 * parts; ++k) {  // second lap hits the visited path
      auto ctx_a = task_context(k % parts, static_cast<std::uint64_t>(k), 4);
      auto ctx_b = task_context(k % parts, static_cast<std::uint64_t>(k), 4);
      const auto a = (*perrow_fn)(ctx_a);
      const auto b = (*fused_fn)(ctx_b);
      const auto& ga = a.value().get<optim::GradHist>();
      const auto& gb = b.value().get<optim::GradHist>();
      if (ga.count != gb.count ||
          !linalg::bitwise_equal(ga.grad.to_dense(), gb.grad.to_dense()) ||
          !linalg::bitwise_equal(ga.hist.to_dense(), gb.hist.to_dense())) {
        out.bit_identical = false;
      }
    }
  }

  auto perrow_table =
      std::make_shared<core::SampleVersionTable>(workload.n(), /*init=*/0);
  auto fused_table =
      std::make_shared<core::SampleVersionTable>(workload.n(), /*init=*/0);
  auto perrow_fn = make_perrow(perrow_table);
  auto fused_fn = optim::detail::make_saga_batch_fn(
      workload.dataset, workload.partitions, workload.loss, handle, fused_table,
      grad_cfg, fraction, hist_model, /*set_version=*/1);
  const auto time_fn = [&](const std::shared_ptr<const engine::TaskFn>& fn) {
    support::Stopwatch watch;
    for (int k = 0; k < iters; ++k) {
      auto ctx = task_context(k % parts, static_cast<std::uint64_t>(k), 4);
      if (!(*fn)(ctx).is_ok()) std::abort();
    }
    return watch.elapsed_ms() * 1e6 / iters;
  };
  out.perrow_ns = 1e18;
  out.fused_ns = 1e18;
  for (int rep = 0; rep < 5; ++rep) {
    out.perrow_ns = std::min(out.perrow_ns, time_fn(perrow_fn));
    out.fused_ns = std::min(out.fused_ns, time_fn(fused_fn));
  }
  return out;
}

/// SVRG inner-task variant (EpochVR): fresh + snapshot gradients, both
/// margin passes fully batched in the fused body.
CaseResult run_svrg_case(const optim::Workload& workload, double fraction, int iters) {
  const linalg::GradVectorConfig grad_cfg =
      optim::SolverConfig{}.grad_config(workload.dim(), workload.dataset->density(),
                                        fraction * static_cast<double>(workload.n()) /
                                            workload.num_partitions());
  linalg::DenseVector snapshot(workload.dim());
  linalg::DenseVector w(workload.dim());
  support::RngStream wrng(3);
  for (std::size_t i = 0; i < w.size(); ++i) {
    snapshot[i] = wrng.uniform(-0.5, 0.5);
    w[i] = wrng.uniform(-0.5, 0.5);
  }
  engine::BroadcastStore store;
  auto registry = std::make_shared<core::HistoryRegistry>(&store);
  registry->publish(snapshot, /*version=*/0);
  registry->publish(w, /*version=*/1);
  const core::HistoryBroadcast snapshot_br(registry, 0);
  const core::HistoryBroadcast w_br(registry, 1);

  const auto perrow_fn = engine::make_aggregate_fn<data::LabeledPoint, optim::GradHist>(
      workload.points.sample(fraction),
      optim::GradHist{linalg::GradVector(grad_cfg), linalg::GradVector(grad_cfg)},
      optim::detail::make_svrg_seq(workload.loss, w_br, snapshot_br, grad_cfg));
  const auto fused_fn = optim::detail::make_svrg_batch_fn(
      workload.dataset, workload.partitions, workload.loss, w_br, snapshot_br,
      grad_cfg, fraction);

  const int parts = workload.num_partitions();
  CaseResult out;
  for (int k = 0; k < parts; ++k) {
    auto ctx_a = task_context(k % parts, static_cast<std::uint64_t>(k), 8);
    auto ctx_b = task_context(k % parts, static_cast<std::uint64_t>(k), 8);
    const auto a = (*perrow_fn)(ctx_a);
    const auto b = (*fused_fn)(ctx_b);
    const auto& ga = a.value().get<optim::GradHist>();
    const auto& gb = b.value().get<optim::GradHist>();
    if (ga.count != gb.count ||
        !linalg::bitwise_equal(ga.grad.to_dense(), gb.grad.to_dense()) ||
        !linalg::bitwise_equal(ga.hist.to_dense(), gb.hist.to_dense())) {
      out.bit_identical = false;
    }
  }
  const auto time_fn = [&](const std::shared_ptr<const engine::TaskFn>& fn) {
    support::Stopwatch watch;
    for (int k = 0; k < iters; ++k) {
      auto ctx = task_context(k % parts, static_cast<std::uint64_t>(k), 8);
      if (!(*fn)(ctx).is_ok()) std::abort();
    }
    return watch.elapsed_ms() * 1e6 / iters;
  };
  out.perrow_ns = 1e18;
  out.fused_ns = 1e18;
  for (int rep = 0; rep < 5; ++rep) {
    out.perrow_ns = std::min(out.perrow_ns, time_fn(perrow_fn));
    out.fused_ns = std::min(out.fused_ns, time_fn(fused_fn));
  }
  return out;
}

/// fig3-style 1-worker SGD: the full solver trajectory must bit-match
/// between fused and per-row kernels (the acceptance check).
bool one_worker_trajectory_bitmatch(const optim::Workload& workload, double fraction,
                                    double step) {
  optim::SolverConfig config;
  config.updates = 12;
  config.batch_fraction = fraction;
  config.step = optim::inv_sqrt_step(step);
  config.eval_every = 12;
  config.seed = 11;

  engine::Cluster::Config cluster_cfg;
  cluster_cfg.num_workers = 1;
  cluster_cfg.cores_per_worker = 1;
  cluster_cfg.network.time_scale = 0.0;

  config.fused_kernels = false;
  engine::Cluster perrow_cluster(cluster_cfg);
  const optim::RunResult perrow =
      optim::SgdSolver::run(perrow_cluster, workload, config);

  config.fused_kernels = true;
  engine::Cluster fused_cluster(cluster_cfg);
  const optim::RunResult fused =
      optim::SgdSolver::run(fused_cluster, workload, config);
  return linalg::bitwise_equal(perrow.final_w, fused.final_w);
}

}  // namespace

int main() {
  bench::banner("Micro: fused batch gradient kernels vs per-row pipeline",
                "one-pass margins + batch derivative + transposed accumulate; "
                "target >=3x on small-fraction dense, >=2x on rcv1-like sparse");

  constexpr int kPartitions = 8;

  // Paper-parameterized geometries. Partition sizes matter: the per-row
  // pipeline pays the sink chain per partition *row*, so toy partitions
  // understate its cost — the sparse/sgd cases use row-scaled stand-ins
  // (rcv1 x8 = 4000-row partitions, still ~1/5 of the paper's).
  const auto epsilon = data::synthetic::epsilon_like(103, /*row_scale=*/2.0);
  const optim::Workload epsilon_workload = optim::Workload::create(
      std::make_shared<const data::Dataset>(epsilon.dataset), kPartitions,
      optim::make_least_squares());

  const auto mnist = data::synthetic::mnist8m_like(102, /*row_scale=*/2.0);
  const optim::Workload mnist_workload = optim::Workload::create(
      std::make_shared<const data::Dataset>(mnist.dataset), kPartitions,
      optim::make_least_squares());

  const auto rcv1 = data::synthetic::rcv1_like(101, /*row_scale=*/8.0);
  const optim::Workload rcv1_workload = optim::Workload::create(
      std::make_shared<const data::Dataset>(rcv1.dataset), kPartitions,
      optim::make_least_squares());

  metrics::Table table({"case", "per-row ns/task", "fused ns/task", "speedup",
                        "bit-identical"});
  std::vector<std::string> rows;
  std::vector<std::pair<std::string, double>> json;

  struct Spec {
    const char* name;
    const optim::Workload* workload;
    double fraction;
    int kind;  // 0 = gradient sum, 1 = SAGA two-pass, 2 = SVRG two-pass
    int iters;
  };
  // The paper's §6.1 mini-batch rates per (dataset, solver family).
  const std::vector<Spec> specs = {
      {"epsilon_sgd_b10", &epsilon_workload, 0.10, 0, 150},
      {"mnist8m_sgd_b10", &mnist_workload, 0.10, 0, 150},
      {"mnist8m_saga_b1", &mnist_workload, 0.01, 1, 700},
      {"mnist8m_svrg_b1", &mnist_workload, 0.01, 2, 700},
      {"rcv1_sgd_b5", &rcv1_workload, 0.05, 0, 400},
      {"rcv1_saga_b2", &rcv1_workload, 0.02, 1, 500},
  };

  for (const Spec& spec : specs) {
    const CaseResult r =
        spec.kind == 1 ? run_saga_case(*spec.workload, spec.fraction, spec.iters)
        : spec.kind == 2
            ? run_svrg_case(*spec.workload, spec.fraction, spec.iters)
            : run_case(*spec.workload, spec.fraction, spec.iters);
    table.add_row({spec.name, metrics::Table::num(r.perrow_ns, 5),
                   metrics::Table::num(r.fused_ns, 5),
                   metrics::Table::num(r.speedup(), 3), r.bit_identical ? "yes" : "NO"});
    std::ostringstream os;
    os << spec.name << ',' << r.perrow_ns << ',' << r.fused_ns << ',' << r.speedup()
       << ',' << (r.bit_identical ? 1 : 0);
    rows.push_back(os.str());
    const std::string prefix = std::string("micro_grad_batch.") + spec.name;
    json.emplace_back(prefix + ".perrow_ns", r.perrow_ns);
    json.emplace_back(prefix + ".fused_ns", r.fused_ns);
    json.emplace_back(prefix + ".speedup", r.speedup());
    json.emplace_back(prefix + ".bit_identical", r.bit_identical ? 1.0 : 0.0);
  }

  const bool traj_dense = one_worker_trajectory_bitmatch(epsilon_workload, 0.10, 0.5);
  const bool traj_sparse = one_worker_trajectory_bitmatch(rcv1_workload, 0.05, 0.5);
  json.emplace_back("micro_grad_batch.trajectory_bitmatch_dense", traj_dense ? 1 : 0);
  json.emplace_back("micro_grad_batch.trajectory_bitmatch_sparse", traj_sparse ? 1 : 0);

  bench::write_csv("micro_grad_batch.csv",
                   "case,perrow_ns,fused_ns,speedup,bit_identical", rows);
  bench::update_bench_json(json);

  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\n1-worker SGD trajectory bit-match: dense="
            << (traj_dense ? "yes" : "NO") << " sparse="
            << (traj_sparse ? "yes" : "NO")
            << "\nshape check: all rows bit-identical; fused ~3x on the "
               "small-fraction dense cases (mnist8m saga/svrg @ b=1%) and "
               ">=2x on the rcv1-like sparse cases; the b=10% dense cases "
               "are batch-kernel-bound and land ~2.3x on memory-limited "
               "hosts.\n";
  return (traj_dense && traj_sparse) ? 0 : 1;
}
