// Engine micro-benchmarks (google-benchmark): the raw costs underneath every
// experiment — queue hops, broadcast fetches, RDD iteration, stage latency.

#include <benchmark/benchmark.h>

#include "asyncml.hpp"
#include "support/blocking_queue.hpp"
#include "support/spsc_ring.hpp"

using namespace asyncml;

namespace {

void BM_BlockingQueuePushPop(benchmark::State& state) {
  support::BlockingQueue<int> queue;
  for (auto _ : state) {
    queue.push(1);
    benchmark::DoNotOptimize(queue.try_pop());
  }
}
BENCHMARK(BM_BlockingQueuePushPop);

void BM_SpscRingPushPop(benchmark::State& state) {
  support::SpscRing<int> ring(1024);
  for (auto _ : state) {
    (void)ring.try_push(1);
    benchmark::DoNotOptimize(ring.try_pop());
  }
}
BENCHMARK(BM_SpscRingPushPop);

void BM_RngSubstreamDerivation(benchmark::State& state) {
  support::RngStream root(42);
  std::uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(root.substream(key++)());
  }
}
BENCHMARK(BM_RngSubstreamDerivation);

void BM_BroadcastCacheHit(benchmark::State& state) {
  engine::BroadcastStore store;
  engine::NetworkModel net;
  net.time_scale = 0.0;
  engine::BroadcastCache cache(&store, &net, nullptr);
  const auto id =
      store.put(engine::Payload::wrap<linalg::DenseVector>(linalg::DenseVector(1024), 8192));
  (void)cache.get_or_fetch(id);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.get_or_fetch(id));
  }
}
BENCHMARK(BM_BroadcastCacheHit);

void BM_RddSampledGradient(benchmark::State& state) {
  const auto problem = data::synthetic::tiny(2'000, 64, 0.0, 1);
  auto dataset = std::make_shared<const data::Dataset>(problem.dataset);
  const auto workload =
      optim::Workload::create(dataset, 4, optim::make_least_squares());
  const auto sampled = workload.points.sample(0.1);
  linalg::DenseVector w(64, 0.01);

  std::uint64_t seq = 0;
  for (auto _ : state) {
    engine::TaskContext ctx;
    ctx.partition = 0;
    ctx.seq = ++seq;
    ctx.rng = support::RngStream(7).substream(1).substream(seq);
    linalg::DenseVector grad(64);
    sampled.foreach_partition(0, ctx, [&](const data::LabeledPoint& p) {
      const double coeff =
          workload.loss->derivative(p.features.dot(w.span()), p.label);
      p.features.axpy_into(coeff, grad.span());
    });
    benchmark::DoNotOptimize(grad.data());
  }
}
BENCHMARK(BM_RddSampledGradient);

void BM_SyncStageLatency(benchmark::State& state) {
  engine::Cluster::Config config;
  config.num_workers = static_cast<int>(state.range(0));
  config.cores_per_worker = 2;
  config.network.time_scale = 0.0;
  engine::Cluster cluster(config);
  const auto rdd = engine::make_vector_rdd(std::vector<int>(256, 1), config.num_workers);

  std::uint64_t seq = 0;
  for (auto _ : state) {
    engine::StageOptions options;
    options.seq = ++seq;
    benchmark::DoNotOptimize(engine::aggregate_sync(
        cluster, rdd, 0L, [](long acc, const int& x) { return acc + x; },
        [](long a, const long& b) { return a + b; }, options));
  }
  state.SetLabel(std::to_string(config.num_workers) + " workers");
}
BENCHMARK(BM_SyncStageLatency)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);

void BM_HistoryPublishResolve(benchmark::State& state) {
  engine::BroadcastStore store;
  core::HistoryRegistry registry(&store);
  engine::Version version = 0;
  for (auto _ : state) {
    registry.publish(linalg::DenseVector(256), version);
    benchmark::DoNotOptimize(registry.value_at(version));
    ++version;
  }
}
BENCHMARK(BM_HistoryPublishResolve);

}  // namespace
