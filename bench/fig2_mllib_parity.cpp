// Figure 2 — "The performance of SGD implemented in ASYNC versus Mllib."
//
// The paper shows that ASYNC's synchronous SGD matches MLlib's on all three
// datasets (same initial step, MLlib's 1/√t decay), establishing that the
// synchronous baselines of the later figures are well optimized.  Here the
// two implementations differ exactly as in the paper: MLlib-SGD reduces via
// treeAggregate, ASYNC's SGD via flat aggregate; math and sampling are
// identical.  Expected shape: overlapping error-vs-time curves per dataset.

#include <iostream>

#include "harness.hpp"

using namespace asyncml;

int main() {
  bench::banner("Figure 2: SGD in ASYNC vs MLlib-style SGD (8 workers)",
                "the two implementations have near-identical error-vs-time curves");

  constexpr int kWorkers = 8;
  constexpr int kPartitions = 32;
  constexpr std::uint64_t kIterations = 60;

  metrics::Table summary({"dataset", "final err (ASYNC)", "final err (MLlib)",
                          "wall ms (ASYNC)", "wall ms (MLlib)", "parity"});
  std::vector<std::string> rows;

  for (const bench::BenchDataset& ds : bench::all_datasets(/*row_scale=*/2.0)) {
    const optim::Workload workload =
        optim::Workload::create(ds.data, kPartitions, optim::make_least_squares());
    const bench::RunPlan plan = bench::make_plan(ds, /*saga=*/false, kIterations,
                                                 kPartitions, /*seed=*/7);

    engine::Cluster c1(bench::cluster_config(kWorkers));
    const optim::RunResult sgd = optim::SgdSolver::run(c1, workload, plan.sync_config);
    engine::Cluster c2(bench::cluster_config(kWorkers));
    const optim::RunResult mllib =
        optim::MllibSgdSolver::run(c2, workload, plan.sync_config);

    for (const std::string& r : bench::trace_rows(ds.name + "-ASYNC", sgd.trace)) {
      rows.push_back(r);
    }
    for (const std::string& r : bench::trace_rows(ds.name + "-MLlib", mllib.trace)) {
      rows.push_back(r);
    }

    const double ratio =
        (sgd.final_error() + 1e-15) / (mllib.final_error() + 1e-15);
    summary.add_row({ds.name, metrics::Table::num(sgd.final_error()),
                     metrics::Table::num(mllib.final_error()),
                     metrics::Table::num(sgd.wall_ms, 4),
                     metrics::Table::num(mllib.wall_ms, 4),
                     (ratio > 0.5 && ratio < 2.0) ? "yes" : "NO"});
  }

  bench::write_csv("fig2.csv", "series,time_ms,update,error", rows);
  std::cout << "\n";
  summary.print(std::cout);
  std::cout << "\nshape check: 'parity' should be yes on every dataset (paper: "
               "curves overlap).\n";
  return 0;
}
