// Figure 4 — "Average wait time per iteration with 8 workers for ASGD and
// SGD in ASYNC for different delay intensities."
//
// Wait time: from a worker submitting its task result until it receives the
// next task.  Expected shape (paper): SGD's average wait grows markedly with
// delay intensity (everyone waits for the straggler at the barrier); ASGD's
// is flat and small.
//
// Beyond the paper, a dynamic-placement section reruns the barrier-wait SGD
// through the ASYNCscheduler with work stealing + speculative replication
// (docs/SCHEDULING.md): under the controlled-delay straggler the straggler
// sheds partitions to healthy peers and overdue tasks are replicated, so the
// same trajectory reaches the target objective >= 1.3x sooner; with no delay
// installed nothing fires and the fixed-placement trajectory is reproduced
// bit for bit.

#include <iostream>

#include "harness.hpp"

using namespace asyncml;

int main() {
  bench::banner(
      "Figure 4: average wait time per iteration, ASGD vs SGD (8 workers, CDS)",
      "SGD wait grows with delay intensity; ASGD wait is flat");

  constexpr int kWorkers = 8;
  constexpr int kPartitions = 32;
  constexpr std::uint64_t kIterations = 30;
  const std::vector<double> kDelays = {0.0, 0.3, 0.6, 1.0};

  metrics::Table summary({"dataset", "delay", "SGD wait ms", "ASGD wait ms",
                          "SGD p95 ms", "ASGD p95 ms"});
  std::vector<std::string> rows;

  for (const bench::BenchDataset& ds : bench::all_datasets(/*row_scale=*/2.0)) {
    const optim::Workload workload =
        optim::Workload::create(ds.data, kPartitions, optim::make_least_squares());
    const bench::RunPlan plan =
        bench::make_plan(ds, /*saga=*/false, kIterations, kPartitions, /*seed=*/13,
                        /*service_floor_ms=*/6.0);

    for (double delay : kDelays) {
      auto model = delay > 0.0
                       ? std::make_shared<straggler::ControlledDelay>(0, delay)
                       : std::shared_ptr<straggler::ControlledDelay>();

      engine::Cluster sync_cluster(bench::cluster_config(kWorkers, model));
      const optim::RunResult sync =
          optim::SgdSolver::run(sync_cluster, workload, plan.sync_config);

      engine::Cluster async_cluster(bench::cluster_config(kWorkers, model));
      const optim::RunResult async_run =
          optim::AsgdSolver::run(async_cluster, workload, plan.async_config);

      std::ostringstream os;
      os << ds.name << ',' << delay << ',' << sync.mean_wait_ms << ','
         << async_run.mean_wait_ms;
      rows.push_back(os.str());
      summary.add_row({ds.name, std::to_string(static_cast<int>(delay * 100)) + "%",
                       metrics::Table::num(sync.mean_wait_ms, 4),
                       metrics::Table::num(async_run.mean_wait_ms, 4),
                       metrics::Table::num(sync.p95_wait_ms, 4),
                       metrics::Table::num(async_run.p95_wait_ms, 4)});
    }
  }

  bench::write_csv("fig4.csv", "dataset,delay,sgd_wait_ms,asgd_wait_ms", rows);
  std::cout << "\n";
  summary.print(std::cout);
  std::cout << "\nshape check: within each dataset, the SGD column rises with delay "
               "while the ASGD column stays ~constant (paper Fig 4).\n";

  // ---- Dynamic placement: work stealing + speculative replication ---------
  // Barrier-wait SGD through the scheduler, 24 partitions (3 per worker) so
  // the straggler's backlog is visible per round. "off" = fixed placement;
  // "on" = stealing + speculation. Same seeds + partition-ordered combining
  // => the trajectories must match bit for bit; only wall clock may differ.
  bench::banner(
      "Figure 4b: barrier-wait SGD with work stealing + speculative replication",
      "steal+spec reaches the target objective >= 1.3x sooner under CDS; "
      "no-delay trajectory is bit-identical to fixed placement");

  // Deliberately the same setup (and seed) as bench_ablation_stealing's
  // fixed / steal+spec rows, so the two binaries cross-check each other's
  // numbers.
  constexpr int kStealPartitions = 24;
  const bench::BenchDataset ds = bench::load_dataset("epsilon", /*row_scale=*/1.0);
  const optim::Workload workload = optim::Workload::create(
      ds.data, kStealPartitions, optim::make_least_squares());
  const bench::RunPlan plan =
      bench::make_plan(ds, /*saga=*/false, /*sync_iterations=*/20, kStealPartitions,
                       /*seed=*/47, /*service_floor_ms=*/6.0);

  metrics::Table steal_table({"delay", "placement", "wall ms", "mean wait ms",
                              "stolen", "specul.", "dups", "migration KB",
                              "time-to-target speedup"});
  std::vector<std::string> steal_rows;

  for (double delay : {0.0, 1.0}) {
    auto model = delay > 0.0
                     ? std::make_shared<straggler::ControlledDelay>(0, delay)
                     : std::shared_ptr<straggler::ControlledDelay>();

    optim::SolverConfig off = plan.sync_config;
    engine::Cluster off_cluster(bench::cluster_config(kWorkers, model));
    const optim::RunResult fixed =
        optim::ScheduledSgdSolver::run(off_cluster, workload, off);

    optim::SolverConfig on = off;
    on.steal_mode = core::StealMode::kLocality;
    on.speculation_factor = 2.0;
    engine::Cluster on_cluster(bench::cluster_config(kWorkers, model));
    const optim::RunResult dynamic =
        optim::ScheduledSgdSolver::run(on_cluster, workload, on);

    const bool bit_identical = linalg::bitwise_equal(fixed.final_w, dynamic.final_w);

    for (const auto* run : {&fixed, &dynamic}) {
      const bool on_run = run == &dynamic;
      std::ostringstream os;
      os << delay << ',' << (on_run ? "steal+spec" : "fixed") << ',' << run->wall_ms
         << ',' << run->mean_wait_ms << ',' << run->partitions_stolen << ','
         << run->tasks_speculated << ',' << run->duplicates_dropped << ','
         << run->migration_bytes / 1024;
      steal_rows.push_back(os.str());
      steal_table.add_row(
          {std::to_string(static_cast<int>(delay * 100)) + "%",
           on_run ? "steal+spec" : "fixed", metrics::Table::num(run->wall_ms, 4),
           metrics::Table::num(run->mean_wait_ms, 4),
           std::to_string(run->partitions_stolen),
           std::to_string(run->tasks_speculated),
           std::to_string(run->duplicates_dropped),
           std::to_string(run->migration_bytes / 1024),
           on_run ? bench::speedup_str(fixed.trace, dynamic.trace) : "1.00x"});
    }
    std::cout << "  [check] delay " << static_cast<int>(delay * 100)
              << "%: trajectories bit-identical: " << (bit_identical ? "yes" : "NO")
              << "\n";
  }

  bench::write_csv("fig4_stealing.csv",
                   "delay,placement,wall_ms,mean_wait_ms,stolen,speculated,dups,"
                   "migration_kb",
                   steal_rows);
  std::cout << "\n";
  steal_table.print(std::cout);
  std::cout << "\nshape check: at 100% delay the steal+spec time-to-target speedup "
               "is >= 1.3x; at 0% delay zero steals and a bit-identical "
               "trajectory.\n";
  return 0;
}
