// Figure 4 — "Average wait time per iteration with 8 workers for ASGD and
// SGD in ASYNC for different delay intensities."
//
// Wait time: from a worker submitting its task result until it receives the
// next task.  Expected shape (paper): SGD's average wait grows markedly with
// delay intensity (everyone waits for the straggler at the barrier); ASGD's
// is flat and small.

#include <iostream>

#include "harness.hpp"

using namespace asyncml;

int main() {
  bench::banner(
      "Figure 4: average wait time per iteration, ASGD vs SGD (8 workers, CDS)",
      "SGD wait grows with delay intensity; ASGD wait is flat");

  constexpr int kWorkers = 8;
  constexpr int kPartitions = 32;
  constexpr std::uint64_t kIterations = 30;
  const std::vector<double> kDelays = {0.0, 0.3, 0.6, 1.0};

  metrics::Table summary({"dataset", "delay", "SGD wait ms", "ASGD wait ms",
                          "SGD p95 ms", "ASGD p95 ms"});
  std::vector<std::string> rows;

  for (const bench::BenchDataset& ds : bench::all_datasets(/*row_scale=*/2.0)) {
    const optim::Workload workload =
        optim::Workload::create(ds.data, kPartitions, optim::make_least_squares());
    const bench::RunPlan plan =
        bench::make_plan(ds, /*saga=*/false, kIterations, kPartitions, /*seed=*/13,
                        /*service_floor_ms=*/6.0);

    for (double delay : kDelays) {
      auto model = delay > 0.0
                       ? std::make_shared<straggler::ControlledDelay>(0, delay)
                       : std::shared_ptr<straggler::ControlledDelay>();

      engine::Cluster sync_cluster(bench::cluster_config(kWorkers, model));
      const optim::RunResult sync =
          optim::SgdSolver::run(sync_cluster, workload, plan.sync_config);

      engine::Cluster async_cluster(bench::cluster_config(kWorkers, model));
      const optim::RunResult async_run =
          optim::AsgdSolver::run(async_cluster, workload, plan.async_config);

      std::ostringstream os;
      os << ds.name << ',' << delay << ',' << sync.mean_wait_ms << ','
         << async_run.mean_wait_ms;
      rows.push_back(os.str());
      summary.add_row({ds.name, std::to_string(static_cast<int>(delay * 100)) + "%",
                       metrics::Table::num(sync.mean_wait_ms, 4),
                       metrics::Table::num(async_run.mean_wait_ms, 4),
                       metrics::Table::num(sync.p95_wait_ms, 4),
                       metrics::Table::num(async_run.p95_wait_ms, 4)});
    }
  }

  bench::write_csv("fig4.csv", "dataset,delay,sgd_wait_ms,asgd_wait_ms", rows);
  std::cout << "\n";
  summary.print(std::cout);
  std::cout << "\nshape check: within each dataset, the SGD column rises with delay "
               "while the ASGD column stays ~constant (paper Fig 4).\n";
  return 0;
}
