// Table 3 — "Average wait time per iteration on 32 workers" under the PCS
// pattern, for all four algorithms.
//
// Paper's numbers (ms):        SAGA     ASAGA    SGD     ASGD
//   mnist8m                    42.84    9.81     6.44    3.57
//   epsilon                     6.99    1.17     5.31    1.42
// Absolute values depend on the testbed; the *shape* to reproduce is
// sync >> async within each algorithm pair on both datasets.

#include <iostream>

#include "harness.hpp"

using namespace asyncml;

int main() {
  bench::banner("Table 3: average wait time per iteration, 32 workers, PCS",
                "synchronous wait far exceeds asynchronous wait for both "
                "SGD/ASGD and SAGA/ASAGA");

  constexpr int kWorkers = 32;
  constexpr int kPartitions = 32;
  constexpr std::uint64_t kIterations = 25;

  metrics::Table table({"dataset", "SAGA ms", "ASAGA ms", "SGD ms", "ASGD ms",
                        "SAGA/ASAGA", "SGD/ASGD"});
  std::vector<std::string> rows;

  for (const std::string& name : {std::string("mnist8m"), std::string("epsilon")}) {
    bench::BenchDataset ds = bench::load_dataset(name, /*row_scale=*/2.0);
    ds.sgd_fraction = 0.01;
    ds.saga_fraction = 0.01;
    const optim::Workload workload =
        optim::Workload::create(ds.data, kPartitions, optim::make_least_squares());

    auto pcs = std::make_shared<straggler::ProductionCluster>(kWorkers, 2026);
    const bench::RunPlan sgd_plan =
        bench::make_plan(ds, /*saga=*/false, kIterations, kPartitions, /*seed=*/31);
    const bench::RunPlan saga_plan =
        bench::make_plan(ds, /*saga=*/true, kIterations, kPartitions, /*seed=*/31);

    double waits[4] = {0, 0, 0, 0};
    {
      engine::Cluster cluster(bench::cluster_config(kWorkers, pcs));
      waits[0] = optim::SagaSolver::run(cluster, workload, saga_plan.sync_config)
                     .mean_wait_ms;
    }
    {
      engine::Cluster cluster(bench::cluster_config(kWorkers, pcs));
      waits[1] = optim::AsagaSolver::run(cluster, workload, saga_plan.async_config)
                     .mean_wait_ms;
    }
    {
      engine::Cluster cluster(bench::cluster_config(kWorkers, pcs));
      waits[2] =
          optim::SgdSolver::run(cluster, workload, sgd_plan.sync_config).mean_wait_ms;
    }
    {
      engine::Cluster cluster(bench::cluster_config(kWorkers, pcs));
      waits[3] = optim::AsgdSolver::run(cluster, workload, sgd_plan.async_config)
                     .mean_wait_ms;
    }

    std::ostringstream os;
    os << name << ',' << waits[0] << ',' << waits[1] << ',' << waits[2] << ','
       << waits[3];
    rows.push_back(os.str());
    table.add_row({name, metrics::Table::num(waits[0], 4),
                   metrics::Table::num(waits[1], 4), metrics::Table::num(waits[2], 4),
                   metrics::Table::num(waits[3], 4),
                   metrics::Table::num(waits[1] > 0 ? waits[0] / waits[1] : 0.0, 3),
                   metrics::Table::num(waits[3] > 0 ? waits[2] / waits[3] : 0.0, 3)});
  }

  bench::write_csv("table3.csv", "dataset,saga_ms,asaga_ms,sgd_ms,asgd_ms", rows);
  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nshape check: both ratio columns > 1 on both datasets (paper: "
               "SAGA/ASAGA 4.4x and 6.0x; SGD/ASGD 1.8x and 3.7x).\n";
  return 0;
}
