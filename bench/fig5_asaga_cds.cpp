// Figure 5 (a–c) — "The performance of ASAGA and SAGA in ASYNC for different
// delay intensities of 0%, 30%, 60% and 100%."
//
// Same CDS setup as Figure 3, for the variance-reduced pair.  Both solvers
// use the ASYNCbroadcaster for historical gradients, so the delay only
// affects computation (the paper notes the communication pattern differs
// from ASGD for exactly this reason).  Expected shape: SAGA degrades with
// delay; ASAGA's convergence rate is delay-invariant.

#include <iostream>

#include "harness.hpp"

using namespace asyncml;

int main() {
  bench::banner(
      "Figure 5: ASAGA vs SAGA under a controlled-delay straggler (8 workers)",
      "ASAGA maintains the same convergence rate across delays; SAGA slows down");

  constexpr int kWorkers = 8;
  constexpr int kPartitions = 32;
  constexpr std::uint64_t kIterations = 40;
  const std::vector<double> kDelays = {0.0, 0.3, 0.6, 1.0};

  metrics::Table summary(
      {"dataset", "delay", "SAGA wall ms", "ASAGA wall ms", "SAGA err", "ASAGA err",
       "speedup(ASAGA vs SAGA)", "ASAGA bcast KB (base+delta)"});
  std::vector<std::string> rows;

  for (const bench::BenchDataset& ds : bench::all_datasets(/*row_scale=*/2.0)) {
    const optim::Workload workload =
        optim::Workload::create(ds.data, kPartitions, optim::make_least_squares());
    const bench::RunPlan plan =
        bench::make_plan(ds, /*saga=*/true, kIterations, kPartitions, /*seed=*/17,
                        /*service_floor_ms=*/6.0);

    for (double delay : kDelays) {
      auto model = delay > 0.0
                       ? std::make_shared<straggler::ControlledDelay>(0, delay)
                       : std::shared_ptr<straggler::ControlledDelay>();

      engine::Cluster sync_cluster(bench::cluster_config(kWorkers, model));
      const optim::RunResult sync =
          optim::SagaSolver::run(sync_cluster, workload, plan.sync_config);

      engine::Cluster async_cluster(bench::cluster_config(kWorkers, model));
      const optim::RunResult async_run =
          optim::AsagaSolver::run(async_cluster, workload, plan.async_config);

      const std::string tag = ds.name + "-d" + std::to_string(static_cast<int>(delay * 100));
      for (const std::string& r : bench::trace_rows(tag + "-Sync", sync.trace)) {
        rows.push_back(r);
      }
      for (const std::string& r : bench::trace_rows(tag + "-ASYNC", async_run.trace)) {
        rows.push_back(r);
      }

      summary.add_row({ds.name, std::to_string(static_cast<int>(delay * 100)) + "%",
                       metrics::Table::num(sync.wall_ms, 4),
                       metrics::Table::num(async_run.wall_ms, 4),
                       metrics::Table::num(sync.final_error()),
                       metrics::Table::num(async_run.final_error()),
                       bench::speedup_str(sync.trace, async_run.trace),
                       bench::bcast_kb_str(async_run)});
    }
  }

  bench::write_csv("fig5.csv", "series,time_ms,update,error", rows);
  std::cout << "\n";
  summary.print(std::cout);
  std::cout << "\nshape check: SAGA wall time grows with delay; ASAGA stays ~flat "
               "(paper Fig 5).\n";
  return 0;
}
